// Tests for the remaining Tiera policy responses and features: compress /
// encrypt / grow / delete responses, tag-based object classes (§2.2),
// bandwidth-paced copies, and metadata snapshot/restore (the BerkeleyDB
// durability role).
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "sim/simulation.h"
#include "tiera/instance.h"

namespace wiera::tiera {
namespace {

template <typename F>
void run(sim::Simulation& sim, F&& body) {
  bool done = false;
  auto wrapper = [](sim::Simulation& s, F b, bool& flag) -> sim::Task<void> {
    co_await b();
    flag = true;
    s.stop();
  };
  sim.spawn(wrapper(sim, std::forward<F>(body), done));
  sim.run();
  ASSERT_TRUE(done);
}

std::unique_ptr<TieraInstance> make_instance(sim::Simulation& sim,
                                             std::string_view policy_src,
                                             Duration timer = sec(10)) {
  auto doc = policy::parse_policy(policy_src);
  EXPECT_TRUE(doc.ok()) << doc.status().to_string();
  TieraInstance::Config config;
  config.instance_id = "features";
  config.region = "us-east";
  config.policy = std::move(doc).value();
  config.params["t"] = policy::Value::duration_of(timer);
  config.tier_tweak = [](const std::string&, store::TierSpec& spec) {
    spec.jitter_fraction = 0;
  };
  return std::make_unique<TieraInstance>(sim, std::move(config));
}

// ------------------------------------------------------------ compress/encrypt

TEST(PolicyFeaturesTest, CompressResponseTagsObjects) {
  sim::Simulation sim;
  auto inst = make_instance(sim, R"(
Tiera Compressor(time t) {
   tier1: {name: EBS, size: 10G};
   event(time=t) : response {
      compress(what:object.location == tier1);
   }
}
)");
  inst->start();
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("doc", Blob(Bytes(8192, 0x41)));
    co_return;
  });
  EXPECT_FALSE(inst->meta().has_tag("doc", "compressed"));
  sim.run_until(TimePoint(sec(11).us()));
  EXPECT_TRUE(inst->meta().has_tag("doc", "compressed"));
}

TEST(PolicyFeaturesTest, EncryptResponseTagsObjects) {
  sim::Simulation sim;
  auto inst = make_instance(sim, R"(
Tiera Encryptor(time t) {
   tier1: {name: EBS, size: 10G};
   event(time=t) : response {
      encrypt(what:object.location == tier1);
   }
}
)");
  inst->start();
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("secret", Blob("s3cr3t"));
    co_return;
  });
  sim.run_until(TimePoint(sec(11).us()));
  EXPECT_TRUE(inst->meta().has_tag("secret", "encrypted"));
  // Payload remains readable through the instance.
  run(sim, [&]() -> sim::Task<void> {
    auto got = co_await inst->get("secret");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got->value.to_string(), "s3cr3t");
  });
}

// ------------------------------------------------------------ grow

TEST(PolicyFeaturesTest, GrowResponseDoublesTierCapacity) {
  sim::Simulation sim;
  auto inst = make_instance(sim, R"(
Tiera Grower() {
   tier1: {name: EBS, size: 4K};
   event(tier1.filled == 75%) : response {
      grow(what:object.location == tier1, to:tier1);
   }
}
)");
  const int64_t original = inst->tier_by_label("tier1")->spec().capacity_bytes;
  run(sim, [&]() -> sim::Task<void> {
    // Three 1 KiB objects push fill past 75% of 4 KiB.
    for (int i = 0; i < 3; ++i) {
      auto put = co_await inst->put("k" + std::to_string(i),
                                    Blob(Bytes(1024, 1)));
      EXPECT_TRUE(put.ok());
    }
  });
  EXPECT_EQ(inst->tier_by_label("tier1")->spec().capacity_bytes,
            2 * original);
}

// ------------------------------------------------------------ tags (§2.2)

TEST(PolicyFeaturesTest, TagBasedObjectClassPolicy) {
  // The paper's example: objects tagged "tmp" are deleted by policy.
  sim::Simulation sim;
  auto inst = make_instance(sim, R"(
Tiera TmpCleaner(time t) {
   tier1: {name: Memcached, size: 1G};
   event(time=t) : response {
      delete(what:object.tag == tmp);
   }
}
)");
  inst->start();
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("scratch", Blob("x"));
    co_await inst->put("keeper", Blob("y"));
    co_return;
  });
  inst->add_tag("scratch", "tmp");
  sim.run_until(TimePoint(sec(11).us()));
  EXPECT_EQ(inst->meta().find("scratch"), nullptr);
  EXPECT_NE(inst->meta().find("keeper"), nullptr);
  EXPECT_FALSE(inst->tier_by_label("tier1")->contains(
      TieraInstance::versioned_key("scratch", 1)));
}

// ------------------------------------------------------------ bandwidth pacing

TEST(PolicyFeaturesTest, BandwidthPacedCopyTakesTime) {
  // Fig. 1(b): copy(..., bandwidth:40KB/s). 200 KiB of dirty data should
  // take ~5 s of virtual time to stream.
  sim::Simulation sim;
  auto inst = make_instance(sim, R"(
Tiera PacedBackup(time t) {
   tier1: {name: Memcached, size: 1G};
   tier2: {name: S3, size: 10G};
   event(insert.into) : response {
      insert.object.dirty = true;
      store(what:insert.object, to:tier1);
   }
   event(time=t) : response {
      copy(what:object.location == tier1 && object.dirty == true,
           to:tier2, bandwidth:40KB/s);
   }
}
)", sec(10));
  inst->start();
  run(sim, [&]() -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await inst->put("blob" + std::to_string(i), Blob(Bytes(40960, 1)));
    }
  });
  // Timer fires at 10 s; 5 x 40 KiB at 40 KiB/s = ~5 s of pacing. At 12 s
  // the backup is still in progress; by 16 s it finished.
  sim.run_until(TimePoint(sec(12).us()));
  const int64_t mid = inst->tier_by_label("tier2")->object_count();
  EXPECT_LT(mid, 5);
  sim.run_until(TimePoint(sec(16).us()));
  EXPECT_EQ(inst->tier_by_label("tier2")->object_count(), 5);
}

// ------------------------------------------------------------ metadata durability

TEST(PolicyFeaturesTest, MetadataSnapshotRestoreAcrossRestart) {
  sim::Simulation sim;
  Bytes snapshot;
  // "First process": write objects (write-through to the durable tier via
  // default store + copy rule), snapshot metadata.
  {
    auto inst = make_instance(sim, R"(
Tiera Durable() {
   tier1: {name: EBS, size: 10G};
}
)");
    run(sim, [&]() -> sim::Task<void> {
      co_await inst->put("persisted", Blob("v1"));
      co_await inst->put("persisted", Blob("v2"));
      co_return;
    });
    inst->add_tag("persisted", "important");
    snapshot = inst->snapshot_metadata();
  }

  // "Restarted process": restore metadata; version history and tags are
  // back (payload re-population is a separate concern — here we check the
  // BerkeleyDB role: the metadata catalog survives).
  auto restarted = make_instance(sim, R"(
Tiera Durable() {
   tier1: {name: EBS, size: 10G};
}
)");
  ASSERT_TRUE(restarted->restore_metadata(snapshot).ok());
  EXPECT_EQ(restarted->get_version_list("persisted"),
            (std::vector<int64_t>{1, 2}));
  EXPECT_TRUE(restarted->meta().has_tag("persisted", "important"));
  const auto* vm = restarted->meta().find_version("persisted", 2);
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->tier, "tier1");
  // A new put continues the version sequence.
  run(sim, [&]() -> sim::Task<void> {
    auto put = co_await restarted->put("persisted", Blob("v3"));
    EXPECT_TRUE(put.ok());
    EXPECT_EQ(put->version, 3);
  });
}

TEST(PolicyFeaturesTest, RestoreRejectsGarbage) {
  sim::Simulation sim;
  auto inst = make_instance(sim, R"(
Tiera Durable() {
   tier1: {name: EBS, size: 10G};
}
)");
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("keep", Blob("v"));
    co_return;
  });
  Bytes garbage{0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  EXPECT_FALSE(inst->restore_metadata(garbage).ok());
  // Existing metadata untouched on failed restore.
  EXPECT_NE(inst->meta().find("keep"), nullptr);
}

// ------------------------------------------------------------ write-through + threshold chain

TEST(PolicyFeaturesTest, PersistentInstanceFullChain) {
  // Fig. 1(b) end-to-end: write-through memory->EBS, then the 50% EBS fill
  // threshold backs everything up to S3 with pacing.
  sim::Simulation sim;
  auto inst = make_instance(sim, R"(
Tiera PersistentInstance() {
   tier1: {name: Memcached, size: 1G};
   tier2: {name: EBS, size: 64K};
   tier3: {name: S3, size: 10G};
   event(insert.into == tier1) : response {
      copy(what:insert.object, to:tier2);
   }
   event(tier2.filled == 50%) : response {
      copy(what:object.location == tier1, to:tier3, bandwidth:400KB/s);
   }
}
)");
  run(sim, [&]() -> sim::Task<void> {
    // 9 x 4 KiB = 36 KiB crosses 50% of 64 KiB on the way.
    for (int i = 0; i < 9; ++i) {
      auto put = co_await inst->put("o" + std::to_string(i),
                                    Blob(Bytes(4096, 1)));
      EXPECT_TRUE(put.ok());
    }
    co_await sim.delay(sec(2));  // let the paced backup drain
  });
  EXPECT_GT(inst->tier_by_label("tier3")->object_count(), 0);
  // Every object is still readable from the fastest tier that has it.
  run(sim, [&]() -> sim::Task<void> {
    for (int i = 0; i < 9; ++i) {
      auto got = co_await inst->get("o" + std::to_string(i));
      EXPECT_TRUE(got.ok()) << i;
    }
  });
}

// ------------------------------------------------------------ policy hot-swap

TEST(PolicyHotSwapTest, AdoptPolicyReplacesRulesAtRuntime) {
  // The paper's headline claim: replace externalized policies at run time.
  // Start with write-back (dirty data persisted on a timer); swap to a
  // write-through policy; new puts copy to disk immediately and the old
  // timer loop dies.
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance(),
                            sec(10));
  inst->start();

  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("before", Blob("v"));
    co_return;
  });
  // Write-back: not yet on disk.
  EXPECT_FALSE(inst->tier_by_label("tier2")->contains(
      TieraInstance::versioned_key("before", 1)));

  auto new_doc = policy::parse_policy(R"(
Tiera WriteThrough() {
   tier1: {name: Memcached, size: 5G};
   tier2: {name: EBS, size: 5G};
   event(insert.into == tier1) : response {
      copy(what:insert.object, to:tier2);
   }
}
)");
  ASSERT_TRUE(new_doc.ok());
  ASSERT_TRUE(inst->adopt_policy(std::move(new_doc).value()).ok());
  EXPECT_EQ(inst->current_policy().name, "WriteThrough");

  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("after", Blob("v"));
    co_return;
  });
  // Write-through took effect immediately.
  EXPECT_TRUE(inst->tier_by_label("tier2")->contains(
      TieraInstance::versioned_key("after", 1)));

  // The old write-back timer is gone: "before" stays dirty in memory only
  // (the new policy has no timer rule to flush it).
  sim.run_until(TimePoint(sec(30).us()));
  EXPECT_FALSE(inst->tier_by_label("tier2")->contains(
      TieraInstance::versioned_key("before", 1)));
  EXPECT_TRUE(inst->meta().find_version("before", 1)->dirty);
  inst->stop();
}

TEST(PolicyHotSwapTest, NewTimerRuleStartsAfterSwap) {
  sim::Simulation sim;
  // Start with no periodic rules at all.
  auto inst = make_instance(sim, R"(
Tiera PlainMemory() {
   tier1: {name: Memcached, size: 5G};
   tier2: {name: EBS, size: 5G};
   event(insert.into) : response {
      insert.object.dirty = true;
      store(what:insert.object, to:tier1);
   }
}
)");
  inst->start();
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("k", Blob("v"));
    co_return;
  });
  sim.run_until(TimePoint(sec(30).us()));
  EXPECT_FALSE(inst->tier_by_label("tier2")->contains(
      TieraInstance::versioned_key("k", 1)));

  // Swap in the paper's write-back policy; its timer starts flushing.
  auto doc = policy::parse_policy(policy::builtin::low_latency_instance());
  ASSERT_TRUE(doc.ok());
  std::map<std::string, policy::Value> params{
      {"t", policy::Value::duration_of(sec(5))}};
  ASSERT_TRUE(inst->adopt_policy(std::move(doc).value(), params).ok());
  sim.run_until(sim.now() + sec(6));
  EXPECT_TRUE(inst->tier_by_label("tier2")->contains(
      TieraInstance::versioned_key("k", 1)));
  inst->stop();
}

TEST(PolicyHotSwapTest, RejectsBadPoliciesAndRollsBack) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance());
  inst->start();

  // Unknown tier in the new policy.
  auto bad_tier = policy::parse_policy(R"(
Tiera Bad() {
   tier9: {name: S3, size: 1G};
   event(insert.into) : response {
      store(what:insert.object, to:tier9);
   }
}
)");
  ASSERT_TRUE(bad_tier.ok());
  EXPECT_EQ(inst->adopt_policy(std::move(bad_tier).value()).code(),
            StatusCode::kFailedPrecondition);

  // Timer rule with an unbound parameter -> compile failure -> rollback.
  auto unbound = policy::parse_policy(R"(
Tiera Unbound(time x) {
   tier1: {name: Memcached, size: 5G};
   event(time=x) : response {
      copy(what:object.location == tier1, to:tier1);
   }
}
)");
  ASSERT_TRUE(unbound.ok());
  EXPECT_FALSE(inst->adopt_policy(std::move(unbound).value(), {}).ok());

  // The original policy still works.
  EXPECT_EQ(inst->current_policy().name, "LowLatencyInstance");
  run(sim, [&]() -> sim::Task<void> {
    auto put = co_await inst->put("still-works", Blob("v"));
    EXPECT_TRUE(put.ok());
  });
  inst->stop();
}

}  // namespace
}  // namespace wiera::tiera
