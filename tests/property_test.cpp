// Randomized property tests over the substrates: wire-format round trips
// under arbitrary op sequences, histogram percentile accuracy across
// distributions, metadata-store serialize/deserialize fidelity, and LWW
// convergence as a pure function.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "metadb/metadb.h"
#include "rpc/wire.h"

namespace wiera {
namespace {

// ------------------------------------------------------------ wire fuzz

enum class WireOp : int { kU8, kBool, kU32, kU64, kI64, kDouble, kString, kBlob };

class WireFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzz, RandomSequencesRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const int ops = static_cast<int>(rng.uniform_int(1, 30));
    std::vector<WireOp> sequence;
    std::vector<uint64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strings;

    rpc::WireWriter w;
    for (int i = 0; i < ops; ++i) {
      const auto op = static_cast<WireOp>(rng.uniform_int(0, 7));
      sequence.push_back(op);
      switch (op) {
        case WireOp::kU8: {
          const auto v = static_cast<uint8_t>(rng.next_below(256));
          ints.push_back(v);
          w.put_u8(v);
          break;
        }
        case WireOp::kBool: {
          const bool v = rng.bernoulli(0.5);
          ints.push_back(v ? 1 : 0);
          w.put_bool(v);
          break;
        }
        case WireOp::kU32: {
          const auto v = static_cast<uint32_t>(rng.next_u64());
          ints.push_back(v);
          w.put_u32(v);
          break;
        }
        case WireOp::kU64: {
          const uint64_t v = rng.next_u64();
          ints.push_back(v);
          w.put_u64(v);
          break;
        }
        case WireOp::kI64: {
          const auto v = static_cast<int64_t>(rng.next_u64());
          ints.push_back(static_cast<uint64_t>(v));
          w.put_i64(v);
          break;
        }
        case WireOp::kDouble: {
          const double v = rng.gaussian(0, 1e6);
          doubles.push_back(v);
          w.put_double(v);
          break;
        }
        case WireOp::kString: {
          std::string s;
          const int len = static_cast<int>(rng.uniform_int(0, 64));
          for (int c = 0; c < len; ++c) {
            s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
          }
          strings.push_back(s);
          w.put_string(s);
          break;
        }
        case WireOp::kBlob: {
          Bytes data(static_cast<size_t>(rng.uniform_int(0, 256)));
          for (auto& b : data) b = static_cast<uint8_t>(rng.next_below(256));
          strings.emplace_back(data.begin(), data.end());
          w.put_blob(Blob(std::move(data)));
          break;
        }
      }
    }

    Bytes data = w.take();
    rpc::WireReader r(data);
    size_t int_i = 0, double_i = 0, string_i = 0;
    for (WireOp op : sequence) {
      switch (op) {
        case WireOp::kU8:
          EXPECT_EQ(r.get_u8(), static_cast<uint8_t>(ints[int_i++]));
          break;
        case WireOp::kBool:
          EXPECT_EQ(r.get_bool(), ints[int_i++] != 0);
          break;
        case WireOp::kU32:
          EXPECT_EQ(r.get_u32(), static_cast<uint32_t>(ints[int_i++]));
          break;
        case WireOp::kU64:
          EXPECT_EQ(r.get_u64(), ints[int_i++]);
          break;
        case WireOp::kI64:
          EXPECT_EQ(r.get_i64(), static_cast<int64_t>(ints[int_i++]));
          break;
        case WireOp::kDouble:
          EXPECT_EQ(r.get_double(), doubles[double_i++]);
          break;
        case WireOp::kString:
          EXPECT_EQ(r.get_string(), strings[string_i++]);
          break;
        case WireOp::kBlob:
          EXPECT_EQ(r.get_blob().to_string(), strings[string_i++]);
          break;
      }
    }
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);

    // Any truncation must fail cleanly, never crash.
    if (!data.empty()) {
      Bytes cut(data.begin(),
                data.begin() + static_cast<int64_t>(
                                   rng.next_below(data.size())));
      rpc::WireReader truncated(cut);
      for (WireOp op : sequence) {
        switch (op) {
          case WireOp::kU8: truncated.get_u8(); break;
          case WireOp::kBool: truncated.get_bool(); break;
          case WireOp::kU32: truncated.get_u32(); break;
          case WireOp::kU64: truncated.get_u64(); break;
          case WireOp::kI64: truncated.get_i64(); break;
          case WireOp::kDouble: truncated.get_double(); break;
          case WireOp::kString: truncated.get_string(); break;
          case WireOp::kBlob: truncated.get_blob(); break;
        }
      }
      EXPECT_FALSE(truncated.ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------ histogram

class HistogramAccuracy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracy, PercentilesWithinBucketError) {
  Rng rng(GetParam());
  // Mixed distribution: sub-ms spikes + tens-of-ms bulk + rare seconds.
  std::vector<int64_t> samples;
  LatencyHistogram hist;
  for (int i = 0; i < 20000; ++i) {
    int64_t us;
    const double roll = rng.next_double();
    if (roll < 0.2) {
      us = static_cast<int64_t>(rng.uniform(100, 900));
    } else if (roll < 0.95) {
      us = static_cast<int64_t>(rng.uniform(5000, 80000));
    } else {
      us = static_cast<int64_t>(rng.uniform(1000000, 5000000));
    }
    samples.push_back(us);
    hist.record(usec(us));
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const auto idx = static_cast<size_t>(
        q * static_cast<double>(samples.size() - 1));
    const double exact = static_cast<double>(samples[idx]);
    const double approx = static_cast<double>(hist.percentile(q).us());
    // Log-bucket growth factor is 1.12: approximation within ~15%.
    EXPECT_NEAR(approx / exact, 1.0, 0.15) << "q=" << q;
  }
  EXPECT_EQ(hist.count(), 20000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracy,
                         ::testing::Values(10, 20, 30));

// ------------------------------------------------------------ metadb fuzz

class MetaDbFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetaDbFuzz, SerializeDeserializeIsIdentityUnderRandomOps) {
  Rng rng(GetParam());
  metadb::MetaDb db;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 30));
    const double roll = rng.next_double();
    if (roll < 0.55) {
      auto& vm = db.upsert_version(key, rng.uniform_int(1, 8));
      vm.size = rng.uniform_int(0, 1 << 20);
      vm.create_time = TimePoint(rng.uniform_int(0, 1'000'000));
      vm.last_modified = TimePoint(rng.uniform_int(0, 1'000'000));
      vm.dirty = rng.bernoulli(0.5);
      vm.tier = "tier" + std::to_string(rng.uniform_int(1, 3));
      vm.origin = "node" + std::to_string(rng.uniform_int(0, 4));
    } else if (roll < 0.7) {
      db.record_access(key, rng.uniform_int(1, 8),
                       TimePoint(rng.uniform_int(0, 2'000'000)));
    } else if (roll < 0.8) {
      db.add_tag(key, "tag" + std::to_string(rng.uniform_int(0, 3)));
    } else if (roll < 0.9) {
      (void)db.remove_version(key, rng.uniform_int(1, 8));
    } else {
      (void)db.remove_object(key);
    }
  }
  const Bytes snapshot = db.serialize();
  metadb::MetaDb copy;
  ASSERT_TRUE(copy.deserialize(snapshot).ok());
  // Serialization is canonical (ordered maps): identity check via bytes.
  EXPECT_EQ(copy.serialize(), snapshot);
  EXPECT_EQ(copy.object_count(), db.object_count());
  EXPECT_EQ(copy.version_count(), db.version_count());
  for (const std::string& key : db.keys()) {
    const auto* original = db.find(key);
    const auto* restored = copy.find(key);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(original->latest_version(), restored->latest_version());
    EXPECT_EQ(original->tags, restored->tags);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetaDbFuzz, ::testing::Values(100, 200, 300));

// Exhaustive corruption sweep over a snapshot: flip every byte, truncate at
// every length. Every mutation must be rejected with a non-OK Status (the
// body checksum covers all of it) and must leave the target store exactly
// as it was — never crash, never half-load.
TEST(MetaDbFuzz, EveryByteFlipAndTruncationIsRejected) {
  metadb::MetaDb db;
  auto& vm = db.upsert_version("key-one", 3);
  vm.size = 4096;
  vm.create_time = TimePoint(1000);
  vm.last_modified = TimePoint(2000);
  vm.dirty = true;
  vm.committed = true;
  vm.tier = "tier1";
  vm.origin = "eu-west";
  vm.checksum = 0xDEADBEEFCAFEF00DULL;
  db.add_tag("key-one", "tmp");
  db.upsert_version("key-two", 1).size = 10;
  const Bytes snapshot = db.serialize();

  metadb::MetaDb target;
  target.upsert_version("sentinel", 9).size = 42;
  const Bytes before = target.serialize();

  for (size_t off = 0; off < snapshot.size(); ++off) {
    Bytes mutated = snapshot;
    mutated[off] ^= 0x01;
    EXPECT_FALSE(target.deserialize(mutated).ok())
        << "byte flip at offset " << off << " was accepted";
    ASSERT_EQ(target.serialize(), before)
        << "byte flip at offset " << off << " modified the store";
  }
  for (size_t len = 0; len < snapshot.size(); ++len) {
    Bytes truncated(snapshot.begin(), snapshot.begin() + len);
    EXPECT_FALSE(target.deserialize(truncated).ok())
        << "truncation to " << len << " bytes was accepted";
    ASSERT_EQ(target.serialize(), before)
        << "truncation to " << len << " bytes modified the store";
  }
  // Trailing garbage after a valid snapshot must also be rejected.
  Bytes padded = snapshot;
  padded.push_back(0);
  EXPECT_FALSE(target.deserialize(padded).ok());

  // The unmutated snapshot still loads — the sweep didn't poison anything.
  EXPECT_TRUE(target.deserialize(snapshot).ok());
  EXPECT_EQ(target.find_version("key-one", 3)->checksum,
            0xDEADBEEFCAFEF00DULL);
}

}  // namespace
}  // namespace wiera
