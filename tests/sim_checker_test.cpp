// Tests for the SimChecker simulation sanitizer: deliberately constructed
// deadlocks, lost wakeups, leaked coroutines, and API misuse must each be
// detected and attributed to the culprit task/primitive by name; clean
// scenarios must stay diagnostic-free; and the determinism harness must
// produce identical event-trace hashes for identical seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/time.h"
#include "sim/checker.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace wiera::sim {
namespace {

using Kind = SimDiagnostic::Kind;

#if WIERA_SIM_CHECKER_ENABLED

// ------------------------------------------------------------ deadlock

Task<void> lock_two(Simulation& sim, SimMutex& first, SimMutex& second) {
  co_await first.lock();
  co_await sim.delay(msec(1));  // give the other task time to grab its lock
  co_await second.lock();
  second.unlock();
  first.unlock();
}

TEST(SimCheckerTest, DetectsAbbaDeadlockCycleByName) {
  Simulation sim;
  SimMutex alpha(sim, "m.alpha");
  SimMutex beta(sim, "m.beta");
  sim.spawn(lock_two(sim, alpha, beta), "locker-ab");
  sim.spawn(lock_two(sim, beta, alpha), "locker-ba");
  sim.run();

  const SimDiagnostic* d = sim.checker().find(Kind::kDeadlock);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_error);
  // The cycle report names both tasks and both mutexes.
  EXPECT_NE(d->message.find("locker-ab"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("locker-ba"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("m.alpha"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("m.beta"), std::string::npos) << d->message;
  // Both tasks are also individually reported as stuck, with holder info.
  EXPECT_TRUE(sim.checker().has(Kind::kStuckTask));
}

TEST(SimCheckerTest, NoDeadlockWhenLockOrderIsConsistent) {
  Simulation sim;
  SimMutex alpha(sim, "m.alpha");
  SimMutex beta(sim, "m.beta");
  sim.spawn(lock_two(sim, alpha, beta), "locker-1");
  sim.spawn(lock_two(sim, alpha, beta), "locker-2");
  sim.run();
  EXPECT_FALSE(sim.checker().has(Kind::kDeadlock));
  EXPECT_FALSE(sim.checker().has(Kind::kStuckTask));
  EXPECT_EQ(sim.checker().error_count(), 0u);
}

// ------------------------------------------------------------ lost wakeup

Task<void> pulse(Event& e) {
  e.set();    // waiters scheduled... but there are none yet
  e.reset();  // ...and the signal is gone
  co_return;
}

Task<void> late_waiter(Simulation& sim, Event& e) {
  co_await sim.delay(msec(1));  // arrives after the pulse: waits forever
  co_await e.wait();
}

TEST(SimCheckerTest, DetectsLostWakeupOnEvent) {
  Simulation sim;
  Event e(sim, "e.pulse");
  sim.spawn(pulse(e), "producer");
  sim.spawn(late_waiter(sim, e), "consumer");
  sim.run();

  const SimDiagnostic* d = sim.checker().find(Kind::kStuckTask);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->task, "consumer");
  EXPECT_EQ(d->primitive, "e.pulse");
  EXPECT_NE(d->message.find("lost wakeup"), std::string::npos) << d->message;
}

Task<void> recv_forever(Channel<int>& ch) {
  while (true) {
    auto item = co_await ch.recv();
    if (!item) break;
  }
}

TEST(SimCheckerTest, ReportsReceiverStuckOnUnclosedChannel) {
  Simulation sim;
  Channel<int> ch(sim, "ch.updates");
  sim.spawn(recv_forever(ch), "flusher");
  sim.run();  // producer never existed; channel never closed

  const SimDiagnostic* d = sim.checker().find(Kind::kStuckTask);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->task, "flusher");
  EXPECT_EQ(d->primitive, "ch.updates");
}

// ------------------------------------------------------------ leaked task

Task<void> never_started() { co_return; }

TEST(SimCheckerTest, DetectsTaskDroppedWithoutStarting) {
  Simulation sim;
  {
    Task<void> t = never_started();
    // destroyed here without co_await or spawn
  }
  const SimDiagnostic* d = sim.checker().find(Kind::kDroppedTask);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_error);
  EXPECT_NE(d->message.find("never"), std::string::npos) << d->message;
}

TEST(SimCheckerTest, ReportsWaiterLeakedByDestroyedPrimitive) {
  Simulation sim;
  {
    auto e = std::make_unique<Event>(sim, "e.doomed");
    auto wait_on = [](Event* ev) -> Task<void> { co_await ev->wait(); };
    sim.spawn(wait_on(e.get()), "orphan");
    sim.run();  // orphan suspends on the event
    // Destroy the event while 'orphan' still waits: it can never wake.
  }
  const SimDiagnostic* d = sim.checker().find(Kind::kDestroyedWithWaiters);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->primitive, "e.doomed");
  EXPECT_NE(d->message.find("orphan"), std::string::npos) << d->message;
}

// ------------------------------------------------------------ misuse errors

TEST(SimCheckerTest, DoubleUnlockIsStructuredError) {
  Simulation sim;
  SimMutex m(sim, "m.solo");
  m.unlock();  // never locked
  const SimDiagnostic* d = sim.checker().find(Kind::kDoubleUnlock);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_error);
  EXPECT_EQ(d->primitive, "m.solo");
  EXPECT_FALSE(m.locked());  // state stays consistent
}

TEST(SimCheckerTest, SendAfterCloseIsStructuredError) {
  Simulation sim;
  Channel<int> ch(sim, "ch.closed");
  ch.close();
  ch.send(42);
  const SimDiagnostic* d = sim.checker().find(Kind::kSendAfterClose);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_error);
  EXPECT_EQ(d->primitive, "ch.closed");
  // Historic best-effort behaviour: the item is still delivered.
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(SimCheckerTest, PromiseDoubleSetKeepsFirstValue) {
  Simulation sim;
  Promise<int> p(sim, "p.reply");
  p.set_value(1);
  p.set_value(2);
  const SimDiagnostic* d = sim.checker().find(Kind::kPromiseDoubleSet);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_error);
  EXPECT_EQ(d->primitive, "p.reply");

  int out = 0;
  auto reader = [](Future<int> f, int& o) -> Task<void> {
    o = co_await f;
  };
  sim.spawn(reader(p.future(), out));
  sim.run();
  EXPECT_EQ(out, 1);  // first value won
}

Task<void> await_reply(Future<int> f, int& out) { out = co_await f; }

TEST(SimCheckerTest, PromiseDroppedUnfulfilledIsReported) {
  Simulation sim;
  int out = -1;
  {
    Promise<int> p(sim, "p.rpc");
    sim.spawn(await_reply(p.future(), out), "rpc-caller");
    sim.run();  // caller suspends on the future
    // p destroyed here, unfulfilled, with rpc-caller waiting
  }
  const SimDiagnostic* d = sim.checker().find(Kind::kPromiseBroken);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_error);
  EXPECT_EQ(d->primitive, "p.rpc");
  EXPECT_EQ(out, -1);

  sim.run();  // quiescent again: the caller is also reported stuck
  const SimDiagnostic* stuck = sim.checker().find(Kind::kStuckTask);
  ASSERT_NE(stuck, nullptr);
  EXPECT_EQ(stuck->task, "rpc-caller");
}

TEST(SimCheckerTest, NegativeSemaphoreReleaseIsReportedAndIgnored) {
  Simulation sim;
  SimSemaphore s(sim, 3, "s.tokens");
  s.release(-2);
  const SimDiagnostic* d = sim.checker().find(Kind::kNegativeRelease);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_error);
  EXPECT_EQ(s.available(), 3);  // unchanged
}

// ------------------------------------------------------------ bookkeeping

Task<void> quick(Simulation& sim) { co_await sim.delay(msec(1)); }

TEST(SimCheckerTest, TracksSpawnCompleteAndLiveTasks) {
  Simulation sim;
  sim.spawn(quick(sim), "a");
  sim.spawn(quick(sim), "b");
  sim.run();
  EXPECT_EQ(sim.checker().tasks_spawned(), 2u);
  EXPECT_EQ(sim.checker().tasks_completed(), 2u);
  EXPECT_TRUE(sim.checker().live_task_names().empty());

  Event e(sim, "e.hold");
  auto hold = [](Event* ev) -> Task<void> { co_await ev->wait(); };
  sim.spawn(hold(&e), "held");
  sim.run_until(sim.now() + msec(1));
  auto live = sim.checker().live_task_names();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0], "held");
  e.set();
  sim.run();
  EXPECT_TRUE(sim.checker().live_task_names().empty());
}

TEST(SimCheckerTest, CleanScenarioProducesNoDiagnostics) {
  Simulation sim;
  Channel<int> ch(sim, "ch.pipe");
  std::vector<int> got;
  auto producer = [](Simulation* s, Channel<int>* c) -> Task<void> {
    for (int i = 0; i < 8; ++i) {
      co_await s->delay(msec(1));
      c->send(i);
    }
    c->close();
  };
  auto consumer = [](Channel<int>* c, std::vector<int>* out) -> Task<void> {
    while (true) {
      auto item = co_await c->recv();
      if (!item) break;
      out->push_back(*item);
    }
  };
  sim.spawn(producer(&sim, &ch), "producer");
  sim.spawn(consumer(&ch, &got), "consumer");
  sim.run();
  EXPECT_EQ(got.size(), 8u);
  EXPECT_TRUE(sim.checker().diagnostics().empty());
}

TEST(SimCheckerTest, RuntimeDisableSilencesChecker) {
  Simulation sim;
  sim.checker().set_enabled(false);
  SimMutex m(sim, "m.any");
  m.unlock();  // would be a double-unlock error
  EXPECT_TRUE(sim.checker().diagnostics().empty());
}

#endif  // WIERA_SIM_CHECKER_ENABLED

// ------------------------------------------------------------ determinism
//
// The determinism harness: run the same mixed-primitive scenario twice with
// the same seed and require bit-identical scheduled-event traces (compared
// via the checker's FNV-1a trace hash). A third run with a different seed
// must diverge. This is the regression net for accidental nondeterminism
// (unordered containers in wake paths, address-dependent tie-breaks, real
// time leaking into virtual time).

Task<void> chaos_worker(Simulation& sim, SimMutex& m, SimSemaphore& s,
                        Channel<int>& ch, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.delay(usec(static_cast<int64_t>(sim.rng().uniform(50, 500))));
    co_await s.acquire();
    co_await m.lock();
    ch.send(i);
    co_await sim.delay(usec(10));
    m.unlock();
    s.release();
  }
}

Task<void> chaos_drain(Channel<int>& ch, int expected) {
  for (int i = 0; i < expected; ++i) {
    (void)co_await ch.recv();
  }
}

// [[maybe_unused]]: with WIERA_SIM_CHECKER=OFF the determinism tests skip
// at compile time and nothing references this helper.
[[maybe_unused]] uint64_t run_chaos(uint64_t seed) {
  Simulation sim(seed);
  SimMutex m(sim, "chaos.m");
  SimSemaphore s(sim, 2, "chaos.s");
  Channel<int> ch(sim, "chaos.ch");
  constexpr int kWorkers = 5;
  constexpr int kRounds = 20;
  for (int w = 0; w < kWorkers; ++w) {
    sim.spawn(chaos_worker(sim, m, s, ch, kRounds),
              "worker-" + std::to_string(w));
  }
  sim.spawn(chaos_drain(ch, kWorkers * kRounds), "drain");
  sim.run();
  EXPECT_EQ(sim.checker().error_count(), 0u);
  return sim.checker().trace_hash();
}

TEST(SimDeterminismTest, SameSeedProducesIdenticalEventTraceHash) {
#if WIERA_SIM_CHECKER_ENABLED
  const uint64_t a = run_chaos(1234);
  const uint64_t b = run_chaos(1234);
  EXPECT_EQ(a, b) << "simulation diverged between two runs with one seed";
#else
  GTEST_SKIP() << "WIERA_SIM_CHECKER=OFF: trace hashing compiled out";
#endif
}

TEST(SimDeterminismTest, DifferentSeedsDiverge) {
#if WIERA_SIM_CHECKER_ENABLED
  EXPECT_NE(run_chaos(1234), run_chaos(4321));
#else
  GTEST_SKIP() << "WIERA_SIM_CHECKER=OFF: trace hashing compiled out";
#endif
}

}  // namespace
}  // namespace wiera::sim
