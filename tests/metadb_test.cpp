// Tests for the versioned metadata store (BerkeleyDB stand-in).
#include <gtest/gtest.h>

#include "metadb/metadb.h"

namespace wiera::metadb {
namespace {

TEST(MetaDbTest, UpsertCreatesObjectAndVersion) {
  MetaDb db;
  VersionMeta& vm = db.upsert_version("k", 1);
  vm.size = 100;
  vm.tier = "tier1";
  ASSERT_NE(db.find("k"), nullptr);
  EXPECT_EQ(db.find("k")->latest_version(), 1);
  EXPECT_EQ(db.find_version("k", 1)->size, 100);
  EXPECT_EQ(db.find_version("k", 1)->tier, "tier1");
  EXPECT_EQ(db.object_count(), 1u);
}

TEST(MetaDbTest, MultipleVersionsOrdered) {
  MetaDb db;
  db.upsert_version("k", 1);
  db.upsert_version("k", 3);
  db.upsert_version("k", 2);
  EXPECT_EQ(db.find("k")->latest_version(), 3);
  EXPECT_EQ(db.version_count(), 3);
  EXPECT_TRUE(db.find("k")->has_version(2));
  EXPECT_FALSE(db.find("k")->has_version(4));
}

TEST(MetaDbTest, FindMissingReturnsNull) {
  MetaDb db;
  EXPECT_EQ(db.find("nope"), nullptr);
  EXPECT_EQ(db.find_version("nope", 1), nullptr);
  db.upsert_version("k", 1);
  EXPECT_EQ(db.find_version("k", 9), nullptr);
}

TEST(MetaDbTest, RecordAccessUpdatesStats) {
  MetaDb db;
  db.upsert_version("k", 1);
  db.record_access("k", 1, TimePoint(5000));
  db.record_access("k", 1, TimePoint(9000));
  const VersionMeta* vm = db.find_version("k", 1);
  EXPECT_EQ(vm->access_count, 2);
  EXPECT_EQ(vm->last_accessed.us(), 9000);
  // Access to unknown key/version is a no-op.
  db.record_access("zz", 1, TimePoint(1));
  db.record_access("k", 7, TimePoint(1));
}

TEST(MetaDbTest, RemoveVersionAndObject) {
  MetaDb db;
  db.upsert_version("k", 1);
  db.upsert_version("k", 2);
  EXPECT_TRUE(db.remove_version("k", 1).ok());
  EXPECT_EQ(db.version_count(), 1);
  EXPECT_EQ(db.remove_version("k", 1).code(), StatusCode::kNotFound);
  // Removing the last version removes the object record.
  EXPECT_TRUE(db.remove_version("k", 2).ok());
  EXPECT_EQ(db.find("k"), nullptr);

  db.upsert_version("k2", 1);
  EXPECT_TRUE(db.remove_object("k2").ok());
  EXPECT_EQ(db.remove_object("k2").code(), StatusCode::kNotFound);
}

TEST(MetaDbTest, ForgetVersionKeepsAllocationFloor) {
  MetaDb db;
  db.upsert_version("k", 5);
  db.upsert_version("k", 6);
  EXPECT_EQ(db.find("k")->max_allocated, 6);
  // forget_version drops the row but not the object record or the floor.
  EXPECT_TRUE(db.forget_version("k", 6).ok());
  ASSERT_NE(db.find("k"), nullptr);
  EXPECT_EQ(db.find("k")->latest_version(), 5);
  EXPECT_EQ(db.find("k")->max_allocated, 6);
  // Even forgetting the last version keeps the record as a tombstone.
  EXPECT_TRUE(db.forget_version("k", 5).ok());
  ASSERT_NE(db.find("k"), nullptr);
  EXPECT_EQ(db.find("k")->latest_version(), 0);
  EXPECT_EQ(db.find("k")->max_allocated, 6);
  EXPECT_EQ(db.forget_version("k", 5).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.forget_version("zz", 1).code(), StatusCode::kNotFound);
  // An empty record never reports as cold (nothing to migrate).
  EXPECT_TRUE(db.cold_objects(TimePoint(hoursd(999).us()), hoursd(1)).empty());
  // remove_version (user-level delete) still erases empty objects.
  db.upsert_version("k2", 1);
  EXPECT_TRUE(db.remove_version("k2", 1).ok());
  EXPECT_EQ(db.find("k2"), nullptr);
}

TEST(MetaDbTest, Tags) {
  MetaDb db;
  db.upsert_version("a", 1);
  db.upsert_version("b", 1);
  db.add_tag("a", "tmp");
  db.add_tag("b", "tmp");
  db.add_tag("b", "log");
  EXPECT_TRUE(db.has_tag("a", "tmp"));
  EXPECT_FALSE(db.has_tag("a", "log"));
  EXPECT_EQ(db.keys_with_tag("tmp").size(), 2u);
  EXPECT_EQ(db.keys_with_tag("log").size(), 1u);
  EXPECT_EQ(db.keys_with_tag("none").size(), 0u);
}

TEST(MetaDbTest, ColdObjectDetection) {
  // The Fig. 6a policy: objects idle longer than a threshold are cold.
  MetaDb db;
  VersionMeta& hot = db.upsert_version("hot", 1);
  hot.create_time = TimePoint(0);
  db.record_access("hot", 1, TimePoint(hoursd(100).us()));
  VersionMeta& cold = db.upsert_version("cold", 1);
  cold.create_time = TimePoint(0);

  const TimePoint now = TimePoint(hoursd(130).us());
  auto cold_keys = db.cold_objects(now, hoursd(120));
  ASSERT_EQ(cold_keys.size(), 1u);
  EXPECT_EQ(cold_keys[0], "cold");

  // At hour 230, "hot" (last access hour 100) also exceeds 120h idle.
  cold_keys = db.cold_objects(TimePoint(hoursd(230).us()), hoursd(120));
  EXPECT_EQ(cold_keys.size(), 2u);
}

TEST(MetaDbTest, ColdnessUsesNewestAccessAcrossVersions) {
  MetaDb db;
  VersionMeta& v1 = db.upsert_version("k", 1);
  v1.create_time = TimePoint(0);
  VersionMeta& v2 = db.upsert_version("k", 2);
  v2.create_time = TimePoint(hoursd(100).us());
  auto cold = db.cold_objects(TimePoint(hoursd(130).us()), hoursd(120));
  EXPECT_TRUE(cold.empty());  // v2's creation keeps the object warm
}

TEST(MetaDbTest, SerializeDeserializeRoundTrip) {
  MetaDb db;
  VersionMeta& vm = db.upsert_version("k1", 2);
  vm.size = 4096;
  vm.create_time = TimePoint(1000);
  vm.last_modified = TimePoint(2000);
  vm.last_accessed = TimePoint(3000);
  vm.access_count = 7;
  vm.dirty = true;
  vm.committed = true;
  vm.tier = "tier2";
  vm.origin = "us-west";
  vm.checksum = 0x1234567890ABCDEFULL;
  db.add_tag("k1", "tmp");
  db.upsert_version("k2", 1).size = 10;

  Bytes data = db.serialize();
  MetaDb loaded;
  ASSERT_TRUE(loaded.deserialize(data).ok());
  EXPECT_EQ(loaded.object_count(), 2u);
  const VersionMeta* lv = loaded.find_version("k1", 2);
  ASSERT_NE(lv, nullptr);
  EXPECT_EQ(lv->size, 4096);
  EXPECT_EQ(lv->create_time.us(), 1000);
  EXPECT_EQ(lv->access_count, 7);
  EXPECT_TRUE(lv->dirty);
  EXPECT_EQ(lv->tier, "tier2");
  EXPECT_EQ(lv->origin, "us-west");
  EXPECT_TRUE(lv->committed);
  EXPECT_EQ(lv->checksum, 0x1234567890ABCDEFULL);
  EXPECT_TRUE(loaded.has_tag("k1", "tmp"));
  // The allocation high-water mark survives the round trip, including one
  // raised above the surviving rows by forget_version.
  EXPECT_TRUE(db.forget_version("k2", 1).ok());
  Bytes again = db.serialize();
  MetaDb reloaded;
  ASSERT_TRUE(reloaded.deserialize(again).ok());
  ASSERT_NE(reloaded.find("k2"), nullptr);
  EXPECT_EQ(reloaded.find("k2")->max_allocated, 1);
  EXPECT_EQ(reloaded.find("k2")->latest_version(), 0);
}

TEST(MetaDbTest, DeserializeCorruptFailsAndPreservesContents) {
  MetaDb db;
  db.upsert_version("keep", 1);
  Bytes junk{1, 2, 3};
  // A tiny buffer claiming many objects must fail cleanly.
  junk.resize(4);
  junk[0] = 0xFF;
  EXPECT_FALSE(db.deserialize(junk).ok());
  EXPECT_NE(db.find("keep"), nullptr);
}

TEST(MetaDbTest, KeysListing) {
  MetaDb db;
  db.upsert_version("b", 1);
  db.upsert_version("a", 1);
  auto keys = db.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");  // map order
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace wiera::metadb
