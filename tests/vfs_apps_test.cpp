// Tests for the POSIX VFS layer (FUSE stand-in), the page-based table
// store (MySQL stand-in), SysBench fileio and the RUBiS workload.
#include <gtest/gtest.h>

#include <memory>

#include "apps/rubis.h"
#include "apps/sysbench.h"
#include "apps/table_store.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "vfs/vfs.h"
#include "wiera/controller.h"

namespace wiera {
namespace {

// Single-region deployment: the VFS talks to a local peer whose only tier
// is a fast local disk (no replication — a plain local Tiera instance).
struct VfsFixture {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  std::unique_ptr<geo::WieraPeer> peer;
  std::unique_ptr<vfs::WieraVfs> fs;

  explicit VfsFixture(int64_t block_size = 16 * KiB)
      : sim(1), network(sim, make_topology()) {
    geo::WieraPeer::Config config;
    config.instance_id = "local-node";
    config.region = "us-east";
    config.mode = geo::ConsistencyMode::kEventual;
    config.local.policy = std::move(policy::parse_policy(R"(
Tiera DiskOnly() {
   tier1: {name: EBS, size: 100G};
}
)")).value();
    config.local.tier_tweak = [](const std::string&, store::TierSpec& spec) {
      spec.jitter_fraction = 0;
      spec.buffer_cache = true;
    };
    peer = std::make_unique<geo::WieraPeer>(sim, network, registry,
                                              std::move(config));
    peer->start();
    vfs::WieraVfs::Options options;
    options.block_size = block_size;
    fs = std::make_unique<vfs::WieraVfs>(sim, *peer, options);
  }

  static net::Topology make_topology() {
    net::Topology topo;
    topo.add_datacenter("dc", net::Provider::kAws, "us-east");
    topo.set_jitter_fraction(0.0);
    topo.add_node("local-node", "dc");
    return topo;
  }

  template <typename F>
  void run(F&& body) {
    bool done = false;
    auto wrapper = [](sim::Simulation& s, F b, bool& flag) -> sim::Task<void> {
      co_await b();
      flag = true;
      s.stop();
    };
    sim.spawn(wrapper(sim, std::forward<F>(body), done));
    sim.run();
    ASSERT_TRUE(done);
  }
};

// ------------------------------------------------------------ VFS

TEST(VfsTest, OpenCloseSemantics) {
  VfsFixture f;
  EXPECT_EQ(f.fs->open("/missing", {}).status().code(),
            StatusCode::kNotFound);
  auto fd = f.fs->open("/a", {.create = true});
  ASSERT_TRUE(fd.ok());
  EXPECT_GE(*fd, 3);
  EXPECT_TRUE(f.fs->exists("/a"));
  EXPECT_TRUE(f.fs->close(*fd).ok());
  EXPECT_FALSE(f.fs->close(*fd).ok());  // double close
  EXPECT_FALSE(f.fs->close(999).ok());
}

TEST(VfsTest, WriteReadRoundTrip) {
  VfsFixture f;
  f.run([&]() -> sim::Task<void> {
    auto fd = f.fs->open("/data", {.create = true});
    EXPECT_TRUE(fd.ok());
    Bytes payload(10000);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(i * 13 + 1);
    }
    auto written = co_await f.fs->pwrite(*fd, 0, Blob(Bytes(payload)));
    EXPECT_TRUE(written.ok());
    EXPECT_EQ(*written, 10000);
    EXPECT_EQ(f.fs->size("/data").value(), 10000);

    Bytes out;
    auto read = co_await f.fs->pread(*fd, 0, 10000, &out);
    EXPECT_TRUE(read.ok());
    EXPECT_EQ(*read, 10000);
    EXPECT_EQ(out, payload);
    EXPECT_TRUE(f.fs->close(*fd).ok());
  });
}

TEST(VfsTest, PartialBlockAndOffsetIo) {
  VfsFixture f(4096);
  f.run([&]() -> sim::Task<void> {
    auto fd = f.fs->open("/p", {.create = true});
    // Write 100 bytes at an unaligned offset spanning a block boundary.
    Bytes chunk(100, 0xAB);
    auto written = co_await f.fs->pwrite(*fd, 4050, Blob(Bytes(chunk)));
    EXPECT_TRUE(written.ok());
    EXPECT_EQ(f.fs->size("/p").value(), 4150);

    Bytes out;
    auto read = co_await f.fs->pread(*fd, 4050, 100, &out);
    EXPECT_TRUE(read.ok());
    EXPECT_EQ(out, chunk);
    // Sparse region before the write reads as zeros.
    auto read0 = co_await f.fs->pread(*fd, 0, 10, &out);
    EXPECT_TRUE(read0.ok());
    EXPECT_EQ(out, Bytes(10, 0));
  });
}

TEST(VfsTest, ReadPastEofTruncates) {
  VfsFixture f;
  f.run([&]() -> sim::Task<void> {
    auto fd = f.fs->open("/s", {.create = true});
    co_await f.fs->pwrite(*fd, 0, Blob(Bytes(100, 1)));
    Bytes out;
    auto read = co_await f.fs->pread(*fd, 50, 1000, &out);
    EXPECT_TRUE(read.ok());
    EXPECT_EQ(*read, 50);
    auto eof = co_await f.fs->pread(*fd, 100, 10, &out);
    EXPECT_TRUE(eof.ok());
    EXPECT_EQ(*eof, 0);
  });
}

TEST(VfsTest, TruncateOnOpen) {
  VfsFixture f;
  f.run([&]() -> sim::Task<void> {
    auto fd = f.fs->open("/t", {.create = true});
    co_await f.fs->pwrite(*fd, 0, Blob(Bytes(500, 1)));
    EXPECT_TRUE(f.fs->close(*fd).ok());
    auto fd2 = f.fs->open("/t", {.create = true, .truncate = true});
    EXPECT_EQ(f.fs->size("/t").value(), 0);
    EXPECT_TRUE(f.fs->close(*fd2).ok());
  });
}

TEST(VfsTest, UnlinkAndList) {
  VfsFixture f;
  f.run([&]() -> sim::Task<void> {
    auto a = f.fs->open("/dir/a", {.create = true});
    auto b = f.fs->open("/dir/b", {.create = true});
    auto c = f.fs->open("/other/c", {.create = true});
    (void)a; (void)b; (void)c;
    EXPECT_EQ(f.fs->list("/dir/").size(), 2u);
    EXPECT_TRUE((co_await f.fs->unlink("/dir/a")).ok());
    EXPECT_EQ(f.fs->list("/dir/").size(), 1u);
    EXPECT_FALSE(f.fs->exists("/dir/a"));
    EXPECT_EQ((co_await f.fs->unlink("/dir/a")).code(),
              StatusCode::kNotFound);
  });
}

TEST(VfsTest, DirectIoBypassesCache) {
  VfsFixture f(4096);
  int64_t cached_us = 0, direct_us = 0;
  f.run([&]() -> sim::Task<void> {
    auto fd = f.fs->open("/d", {.create = true});
    co_await f.fs->pwrite(*fd, 0, Blob(Bytes(4096, 1)));
    // Warm read (buffer cache).
    co_await f.fs->pread(*fd, 0, 4096);
    int64_t t0 = f.sim.now().us();
    co_await f.fs->pread(*fd, 0, 4096);
    cached_us = f.sim.now().us() - t0;
    EXPECT_TRUE(f.fs->close(*fd).ok());

    auto dfd = f.fs->open("/d", {.direct = true});
    t0 = f.sim.now().us();
    co_await f.fs->pread(*dfd, 0, 4096);
    direct_us = f.sim.now().us() - t0;
    EXPECT_TRUE(f.fs->close(*dfd).ok());
  });
  EXPECT_GT(direct_us, 3 * cached_us);  // device latency vs cache hit
}

TEST(VfsTest, FsyncCostsAndValidatesFd) {
  VfsFixture f;
  f.run([&]() -> sim::Task<void> {
    auto fd = f.fs->open("/f", {.create = true});
    EXPECT_TRUE((co_await f.fs->fsync(*fd)).ok());
    EXPECT_FALSE((co_await f.fs->fsync(12345)).ok());
  });
}

// ------------------------------------------------------------ TableStore

TEST(TableStoreTest, CreateInsertSelectUpdate) {
  VfsFixture f;
  apps::TableStore db(f.sim, *f.fs, {});
  EXPECT_TRUE(db.create_table("t", 256).ok());
  EXPECT_EQ(db.create_table("t", 256).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(db.create_table("huge", 1 * MiB).ok());  // row > page

  f.run([&]() -> sim::Task<void> {
    Bytes row(256, 0x5A);
    auto id = co_await db.insert("t", Blob(Bytes(row)));
    EXPECT_TRUE(id.ok());
    EXPECT_EQ(*id, 0);
    auto id2 = co_await db.insert("t", Blob(Bytes(256, 0x77)));
    EXPECT_EQ(*id2, 1);
    EXPECT_EQ(db.row_count("t"), 2);

    auto got = co_await db.select("t", 0);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got->view()[0], 0x5A);

    EXPECT_TRUE((co_await db.update("t", 0, Blob(Bytes(256, 0x11)))).ok());
    got = co_await db.select("t", 0);
    EXPECT_EQ(got->view()[0], 0x11);
    // Neighbour row untouched by the page RMW.
    got = co_await db.select("t", 1);
    EXPECT_EQ(static_cast<uint8_t>(got->view()[0]), 0x77);

    auto missing = co_await db.select("t", 99);
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
    auto no_table = co_await db.select("zz", 0);
    EXPECT_EQ(no_table.status().code(), StatusCode::kNotFound);
  });
}

TEST(TableStoreTest, BufferPoolHitsAndEviction) {
  VfsFixture f;
  apps::TableStore::Options options;
  options.buffer_pool_bytes = 64 * KiB;  // 4 pages of 16K
  apps::TableStore db(f.sim, *f.fs, options);
  ASSERT_TRUE(db.create_table("t", 1024).ok());
  f.run([&]() -> sim::Task<void> {
    // 160 rows of 1K = 10 pages; pool holds 4.
    for (int i = 0; i < 160; ++i) {
      co_await db.insert("t", Blob(Bytes(1024, 1)));
    }
    const int64_t misses_before = db.buffer_pool_misses();
    // Repeatedly touch two rows on the same page: hits.
    for (int i = 0; i < 10; ++i) {
      co_await db.select("t", 0);
      co_await db.select("t", 1);
    }
    EXPECT_GE(db.buffer_pool_hits(), 19);
    // Scan everything: forces evictions and misses.
    for (int i = 0; i < 160; i += 16) {
      co_await db.select("t", i);
    }
    EXPECT_GT(db.buffer_pool_misses(), misses_before);
  });
}

// ------------------------------------------------------------ SysBench

TEST(SysbenchTest, PrepareAndRunReportsIops) {
  VfsFixture f;
  apps::SysbenchOptions options;
  options.file_size = 1 * MiB;
  options.block_size = 16 * KiB;
  options.operations = 200;
  options.seed = 3;
  apps::SysbenchFileIo bench(f.sim, *f.fs, options);
  f.run([&]() -> sim::Task<void> {
    Status st = co_await bench.prepare();
    EXPECT_TRUE(st.ok()) << st.to_string();
    auto result = co_await bench.run();
    EXPECT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_EQ(result->reads + result->writes, 200);
    EXPECT_GT(result->reads, 50);
    EXPECT_GT(result->writes, 50);
    EXPECT_GT(result->iops(), 0.0);
  });
}

TEST(SysbenchTest, IopsThrottledDiskCapsNear500) {
  // Fig. 11's key effect: a disk capped at 500 IOPS pins SysBench there.
  sim::Simulation sim(1);
  net::Topology topo;
  topo.add_datacenter("dc", net::Provider::kAzure, "us-east");
  topo.set_jitter_fraction(0.0);
  topo.add_node("azure-node", "dc");
  net::Network network(sim, std::move(topo));
  rpc::Registry registry;

  geo::WieraPeer::Config config;
  config.instance_id = "azure-node";
  config.region = "us-east";
  config.mode = geo::ConsistencyMode::kEventual;
  config.local.policy = std::move(policy::parse_policy(R"(
Tiera AzureDisk() {
   tier1: {name: EBS, size: 100G};
}
)")).value();
  config.local.tier_tweak = [](const std::string&, store::TierSpec& spec) {
    spec.jitter_fraction = 0;
    spec.iops_limit = 500;  // Azure disk throttle
    spec.buffer_cache = false;
  };
  geo::WieraPeer peer(sim, network, registry, std::move(config));
  peer.start();
  vfs::WieraVfs fs(sim, peer, {.block_size = 16 * KiB});

  apps::SysbenchOptions options;
  options.file_size = 1 * MiB;
  options.operations = 1000;
  options.direct = true;
  apps::SysbenchFileIo bench(sim, fs, options);
  bool done = false;
  auto body = [](apps::SysbenchFileIo& b, bool& flag,
                 sim::Simulation& s) -> sim::Task<void> {
    Status st = co_await b.prepare();
    EXPECT_TRUE(st.ok());
    auto result = co_await b.run();
    EXPECT_TRUE(result.ok());
    // ~500 IOPS cap (same-DC RPC overhead eats a little).
    EXPECT_LT(result->iops(), 520.0);
    EXPECT_GT(result->iops(), 380.0);
    flag = true;
    s.stop();
  };
  sim.spawn(body(bench, done, sim));
  sim.run();
  ASSERT_TRUE(done);
}

// ------------------------------------------------------------ RUBiS

TEST(RubisTest, PopulateAndRunSmall) {
  VfsFixture f;
  apps::TableStore db(f.sim, *f.fs, {});
  apps::RubisOptions options;
  options.items = 200;
  options.users = 200;
  options.clients = 10;
  options.ramp_up = sec(5);
  options.measure = sec(20);
  options.ramp_down = sec(5);
  options.think_time = msec(100);
  apps::RubisApp app(f.sim, db, options);
  f.run([&]() -> sim::Task<void> {
    Status st = co_await app.populate();
    EXPECT_TRUE(st.ok()) << st.to_string();
    EXPECT_EQ(db.row_count("users"), 200);
    EXPECT_EQ(db.row_count("items"), 200);
    auto result = co_await app.run();
    EXPECT_TRUE(result.ok());
    EXPECT_GT(result->requests_measured, 100);
    EXPECT_GT(result->throughput_rps(), 1.0);
    EXPECT_NEAR(result->measure_window.seconds(), 20.0, 0.1);
  });
  EXPECT_GT(app.total_requests(), 0);
}

}  // namespace
}  // namespace wiera
