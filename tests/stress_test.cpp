// Stress and determinism tests: large fan-outs on the DES kernel, Glacier
// semantics, RPC concurrency, and bit-reproducibility of a full Wiera
// deployment under load.
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "store/tier.h"
#include "wiera/client.h"
#include "wiera/controller.h"

namespace wiera {
namespace {

// ------------------------------------------------------------ DES stress

sim::Task<void> chatter(sim::Simulation& sim, int rounds, int64_t& ops) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.delay(usec(static_cast<int64_t>(sim.rng().uniform(1, 100))));
    ops++;
  }
}

TEST(StressTest, TenThousandConcurrentTasks) {
  sim::Simulation sim(99);
  int64_t ops = 0;
  for (int i = 0; i < 10000; ++i) sim.spawn(chatter(sim, 10, ops));
  sim.run();
  EXPECT_EQ(ops, 100000);
}

TEST(StressTest, DeepChannelPipeline) {
  // 64 stages connected by channels; 100 items flow through all of them.
  sim::Simulation sim;
  constexpr int kStages = 64;
  std::vector<std::unique_ptr<sim::Channel<int>>> channels;
  for (int i = 0; i <= kStages; ++i) {
    channels.push_back(std::make_unique<sim::Channel<int>>(sim));
  }
  auto stage = [](sim::Simulation& s, sim::Channel<int>& in,
                  sim::Channel<int>& out) -> sim::Task<void> {
    while (true) {
      auto item = co_await in.recv();
      if (!item) break;
      co_await s.delay(usec(10));
      out.send(*item + 1);
    }
    out.close();
  };
  for (int i = 0; i < kStages; ++i) {
    sim.spawn(stage(sim, *channels[static_cast<size_t>(i)],
                    *channels[static_cast<size_t>(i) + 1]));
  }
  for (int i = 0; i < 100; ++i) channels[0]->send(0);
  channels[0]->close();

  std::vector<int> results;
  auto sink = [](sim::Channel<int>& in,
                 std::vector<int>& out) -> sim::Task<void> {
    while (true) {
      auto item = co_await in.recv();
      if (!item) break;
      out.push_back(*item);
    }
  };
  sim.spawn(sink(*channels[kStages], results));
  sim.run();
  ASSERT_EQ(results.size(), 100u);
  for (int v : results) EXPECT_EQ(v, kStages);
}

// ------------------------------------------------------------ Glacier

TEST(GlacierTest, ArchivalRetrievalTakesHours) {
  sim::Simulation sim;
  store::TierSpec spec;
  spec.name = "glacier";
  spec.kind = store::TierKind::kGlacier;
  spec.jitter_fraction = 0;
  auto tier = store::make_tier(sim, spec);
  bool done = false;
  int64_t put_us = 0, get_us = 0;
  auto body = [&]() -> sim::Task<void> {
    co_await tier->put("archive", Blob(Bytes(1 * MiB, 0)));
    put_us = sim.now().us();
    co_await tier->get("archive");
    get_us = sim.now().us() - put_us;
    done = true;
  };
  sim.spawn(body());
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_LT(put_us, sec(2).us());          // archiving is quick-ish
  EXPECT_GE(get_us, hoursd(0.9).us());     // retrieval takes ~hours
}

// ------------------------------------------------------------ RPC concurrency

TEST(StressTest, ManyConcurrentRpcCalls) {
  sim::Simulation sim;
  net::Topology topo;
  topo.add_datacenter("a", net::Provider::kAws, "us-east");
  topo.add_datacenter("b", net::Provider::kAws, "us-west");
  topo.set_rtt("a", "b", msec(70));
  topo.set_jitter_fraction(0.0);
  topo.add_node("server", "a", net::VmType{"fat", 1000.0});
  topo.add_node("client", "b", net::VmType{"fat", 1000.0});
  net::Network network(sim, std::move(topo));
  rpc::Registry registry;
  rpc::Endpoint server(network, registry, "server");
  rpc::Endpoint client(network, registry, "client");
  server.register_handler(
      "echo", [](rpc::Message m) -> sim::Task<Result<rpc::Message>> {
        co_return m;
      });

  int completed = 0;
  auto caller = [](rpc::Endpoint& ep, int& count) -> sim::Task<void> {
    rpc::WireWriter w;
    w.put_string("x");
    rpc::Message msg{w.take()};
    auto resp = co_await ep.call("server", "echo", std::move(msg));
    EXPECT_TRUE(resp.ok());
    count++;
  };
  for (int i = 0; i < 500; ++i) sim.spawn(caller(client, completed));
  sim.run();
  EXPECT_EQ(completed, 500);
  // All calls overlapped: wall time stays near one RTT (payloads are tiny).
  EXPECT_LT(sim.now().seconds(), 0.2);
}

// ------------------------------------------------------------ determinism

struct Fingerprint {
  int64_t events;
  int64_t now_us;
  int64_t versions;
  bool operator==(const Fingerprint& o) const {
    return events == o.events && now_us == o.now_us && versions == o.versions;
  }
};

Fingerprint run_wiera_load(uint64_t seed) {
  sim::Simulation sim(seed);
  net::Topology topo = net::Topology::paper_default();
  topo.add_node("wiera-controller", "aws-us-east");
  topo.add_node("tiera-us-west", "aws-us-west");
  topo.add_node("tiera-us-east", "aws-us-east");
  topo.add_node("tiera-eu-west", "aws-eu-west");
  topo.add_node("tiera-asia-east", "aws-asia-east");
  topo.add_node("client-1", "aws-us-west");
  topo.add_node("client-2", "aws-eu-west");
  net::Network network(sim, std::move(topo));
  rpc::Registry registry;
  geo::WieraController controller(sim, network, registry,
                                  {"wiera-controller", sec(1), 0});
  std::vector<std::unique_ptr<geo::TieraServer>> servers;
  for (const char* node : {"tiera-us-west", "tiera-us-east", "tiera-eu-west",
                           "tiera-asia-east"}) {
    servers.push_back(std::make_unique<geo::TieraServer>(sim, network,
                                                         registry, node));
    controller.register_server(servers.back().get());
  }
  geo::WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::eventual_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(30));
  auto peers = controller.start_instances("w", std::move(options));
  EXPECT_TRUE(peers.ok());

  geo::WieraClient c1(sim, network, registry, "c1", "client-1", *peers);
  geo::WieraClient c2(sim, network, registry, "c2", "client-2", *peers);
  auto load = [](geo::WieraClient& c, sim::Simulation& s,
                 int ops) -> sim::Task<void> {
    Rng rng(fnv1a64(c.id()));
    for (int i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(rng.uniform_int(0, 15));
      if (rng.bernoulli(0.4)) {
        auto r = co_await c.put(key, Blob::zeros(1024));
        (void)r;
      } else {
        auto r = co_await c.get(key);
        (void)r;
      }
      co_await s.delay(msec(static_cast<double>(rng.uniform(10, 100))));
    }
  };
  sim.spawn(load(c1, sim, 100));
  sim.spawn(load(c2, sim, 100));
  sim.run_until(TimePoint(sec(60).us()));

  Fingerprint fp;
  fp.events = static_cast<int64_t>(sim.events_executed());
  fp.now_us = sim.now().us();
  fp.versions = 0;
  for (const char* node : {"tiera-us-west", "tiera-us-east", "tiera-eu-west",
                           "tiera-asia-east"}) {
    fp.versions += controller.peer(node)->local().meta().version_count();
  }
  return fp;
}

TEST(DeterminismTest, FullDeploymentIsBitReproducible) {
  Fingerprint a = run_wiera_load(1234);
  Fingerprint b = run_wiera_load(1234);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.now_us, b.now_us);
  EXPECT_EQ(a.versions, b.versions);
  Fingerprint c = run_wiera_load(5678);
  EXPECT_NE(a.events, c.events);  // different seed, different trace
}

}  // namespace
}  // namespace wiera
