// Unit tests for the telemetry layer (docs/OBSERVABILITY.md): metrics
// registry, exact small-sample histogram percentiles, deterministic tracing
// with TraceView reassembly, the JSONL event journal, and the SimChecker's
// leaked-span diagnostic at quiescence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"

namespace wiera::obs {
namespace {

// ----------------------------------------------------------------- registry

TEST(RegistryTest, LabeledFamiliesShareNameButNotSeries) {
  Registry reg;
  Counter* a = reg.counter("wiera_repairs_total", {{"instance", "NYC"}});
  Counter* b = reg.counter("wiera_repairs_total", {{"instance", "Paris"}});
  EXPECT_NE(a, b);
  a->inc(3);
  b->inc();
  EXPECT_EQ(reg.counter_value("wiera_repairs_total", {{"instance", "NYC"}}),
            3);
  EXPECT_EQ(reg.counter_value("wiera_repairs_total", {{"instance", "Paris"}}),
            1);
  EXPECT_EQ(reg.counter_sum("wiera_repairs_total"), 4);
  // Missing series/family read as zero, never materialize.
  EXPECT_EQ(reg.counter_value("wiera_repairs_total", {{"instance", "LA"}}), 0);
  EXPECT_EQ(reg.counter_sum("nope_total"), 0);
}

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  Registry reg;
  Counter* a = reg.counter("x_total", {{"k", "v"}});
  a->inc();
  // Same name+labels in any key order resolves to the same instrument.
  EXPECT_EQ(reg.counter("x_total", {{"k", "v"}}), a);
  Gauge* g = reg.gauge("x_depth");
  g->set(2.5);
  EXPECT_EQ(reg.gauge("x_depth"), g);
  Histogram* h = reg.histogram("x_us");
  h->record(msec(5));
  EXPECT_EQ(reg.histogram("x_us"), h);
  ASSERT_NE(reg.find_histogram("x_us"), nullptr);
  EXPECT_EQ(reg.find_histogram("x_us")->count(), 1);
  EXPECT_EQ(reg.find_histogram("x_us", {{"k", "v"}}), nullptr);
}

TEST(RegistryTest, RenderTextIsSortedAndByteStable) {
  Registry reg;
  // Created in reverse order on purpose: rendering must sort by family
  // name, then label string.
  reg.counter("z_total")->inc(9);
  reg.counter("a_total", {{"instance", "b"}})->inc(2);
  reg.counter("a_total", {{"instance", "a"}})->inc(1);
  reg.histogram("m_us")->record(msec(10));
  const std::string text = reg.render_text();
  EXPECT_LT(text.find("a_total{instance=\"a\"} 1"),
            text.find("a_total{instance=\"b\"} 2"));
  // Families sorted by name within each instrument kind; counters render
  // before histograms.
  EXPECT_LT(text.find("a_total"), text.find("z_total"));
  EXPECT_LT(text.find("z_total"), text.find("m_us"));
  EXPECT_NE(text.find("m_us_count"), std::string::npos);
  // Byte-stable: a second render is identical.
  EXPECT_EQ(text, reg.render_text());
  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"z_total\""), std::string::npos);
  // JSON keys carry the label string with inner quotes escaped.
  EXPECT_NE(json.find("a_total{instance=\\\"a\\\"}"), std::string::npos);
}

// ---------------------------------------------------- exact small-n centiles

TEST(HistogramTest, SingleSampleReportsItselfAtEveryQuantile) {
  LatencyHistogram h;
  h.record(msec(7));
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), msec(7));
  for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), msec(7)) << "q=" << q;
  }
}

TEST(HistogramTest, TwoSamplesSplitAtTheMedian) {
  // The documented n=2 edge: nearest-rank gives the lower sample for
  // q<=0.5 and the upper one above — no bucket interpolation drift.
  LatencyHistogram h;
  h.record(msec(1));
  h.record(msec(100));
  EXPECT_EQ(h.percentile(0.5), msec(1));
  EXPECT_EQ(h.percentile(0.51), msec(100));
  EXPECT_EQ(h.percentile(0.99), msec(100));
  EXPECT_EQ(h.sum(), msec(101));
}

TEST(HistogramTest, ExactUntilSampleCapThenBucketed) {
  LatencyHistogram h;
  for (int i = 1; i <= 64; ++i) h.record(msec(i));
  // Still exact at the cap: p50 over 1..64ms is the 32nd sample.
  EXPECT_EQ(h.percentile(0.5), msec(32));
  h.record(msec(65));  // 65th sample: flips to the bucketed approximation
  const Duration p50 = h.percentile(0.5);
  // Bucketed error bound is ~6% of the true value (33ms).
  EXPECT_GE(p50, msec(33));
  EXPECT_LE(p50.us(), static_cast<int64_t>(msec(33).us() * 1.12));
  EXPECT_EQ(h.count(), 65);
}

TEST(HistogramTest, MergeStaysExactOnlyWhileSmall) {
  LatencyHistogram a, b;
  a.record(msec(1));
  b.record(msec(3));
  a.merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.percentile(0.5), msec(1));
  EXPECT_EQ(a.percentile(1.0), msec(3));

  LatencyHistogram big, small;
  for (int i = 0; i < 100; ++i) big.record(msec(10));
  small.record(msec(10));
  small.merge(big);  // union > kExactSamples: falls back to buckets
  EXPECT_EQ(small.count(), 101);
  EXPECT_GE(small.percentile(0.5), msec(10));
}

TEST(HistogramTest, ResetRestoresExactMode) {
  LatencyHistogram h;
  for (int i = 0; i < 200; ++i) h.record(msec(50));
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), Duration::zero());
  EXPECT_EQ(h.percentile(0.5), Duration::zero());
  h.record(msec(9));
  EXPECT_EQ(h.percentile(0.99), msec(9));  // exact again after reset
}

// ------------------------------------------------------------------- tracer

TEST(TracerTest, SameSeedSameIdsDifferentSeedDifferent) {
  Tracer a(42), b(42), c(43);
  const TraceContext ta = a.start_trace("op", "h");
  const TraceContext tb = b.start_trace("op", "h");
  const TraceContext tc = c.start_trace("op", "h");
  EXPECT_EQ(ta.trace_id, tb.trace_id);
  EXPECT_EQ(ta.span_id, tb.span_id);
  EXPECT_NE(ta.trace_id, tc.trace_id);
}

TEST(TracerTest, InactiveParentYieldsInactiveChildWithoutConsumingIds) {
  Tracer t(1);
  const TraceContext untraced = t.start_span("child", "h", TraceContext{});
  EXPECT_FALSE(untraced.active());
  // The no-op child must not have consumed the span counter: the next real
  // trace's ids match a fresh tracer's second... i.e. a tracer that never
  // saw the inactive call.
  Tracer fresh(1);
  EXPECT_EQ(t.start_trace("op", "h").span_id,
            fresh.start_trace("op", "h").span_id);
}

TEST(TracerTest, OpenCountTracksUnclosedSpans) {
  Tracer t(1);
  const TraceContext root = t.start_trace("op", "h");
  const TraceContext child = t.start_span("step", "h", root);
  EXPECT_EQ(t.open_count(), 2);
  t.end_span(child);
  t.end_span(root, "UNAVAILABLE");
  EXPECT_EQ(t.open_count(), 0);
  const Span* span = t.find_span(root.span_id);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->status, "UNAVAILABLE");
  EXPECT_FALSE(span->open());
}

TEST(TracerTest, AnnotationsLandInOrder) {
  Tracer t(1);
  const TraceContext root = t.start_trace("op", "h");
  t.annotate(root, "retry=1");
  t.annotate(root, "breaker=open");
  t.end_span(root);
  const Span* span = t.find_span(root.span_id);
  ASSERT_NE(span, nullptr);
  ASSERT_EQ(span->annotations.size(), 2u);
  EXPECT_EQ(span->annotations[0], "retry=1");
  EXPECT_EQ(span->annotations[1], "breaker=open");
}

TEST(TracerTest, RetentionOffStillGeneratesIdsButStoresNothing) {
  Tracer t(1);
  t.set_retain(false);
  const TraceContext root = t.start_trace("op", "h");
  EXPECT_TRUE(root.active());  // ids always flow (determinism contract)
  t.annotate(root, "x=y");
  t.end_span(root);
  EXPECT_EQ(t.span_count(), 0u);
  EXPECT_EQ(t.find_span(root.span_id), nullptr);
  // Id stream identical to a retaining tracer with the same seed.
  Tracer keep(1);
  EXPECT_EQ(keep.start_trace("op", "h").trace_id, root.trace_id);
}

TEST(TracerTest, BoundedCollectorDropsOldest) {
  Tracer t(1);
  const TraceContext first = t.start_trace("first", "h");
  t.end_span(first);
  for (int i = 0; i < 20000; ++i) {
    const TraceContext ctx = t.start_trace("churn", "h");
    t.end_span(ctx);
  }
  EXPECT_GT(t.dropped(), 0);
  EXPECT_LE(t.span_count(), 16384u);
  EXPECT_EQ(t.find_span(first.span_id), nullptr);  // oldest evicted
  EXPECT_EQ(t.open_count(), 0);
}

TEST(TracerTest, WraparoundAtExactCapacityBoundary) {
  Tracer t(1);
  // Fill to exactly the collector bound: nothing dropped yet.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 16384; ++i) {
    const TraceContext ctx = t.start_trace("fill", "h");
    t.end_span(ctx);
    ids.push_back(ctx.span_id);
  }
  EXPECT_EQ(t.span_count(), 16384u);
  EXPECT_EQ(t.dropped(), 0);
  EXPECT_NE(t.find_span(ids.front()), nullptr);
  // One more span evicts exactly the oldest — and only the oldest.
  const TraceContext extra = t.start_trace("extra", "h");
  t.end_span(extra);
  EXPECT_EQ(t.span_count(), 16384u);
  EXPECT_EQ(t.dropped(), 1);
  EXPECT_EQ(t.find_span(ids[0]), nullptr);
  EXPECT_NE(t.find_span(ids[1]), nullptr);
  EXPECT_NE(t.find_span(extra.span_id), nullptr);
}

TEST(TracerTest, DroppedCountsEveryEvictionIncludingOpenSpans) {
  Tracer t(1);
  // An open span can be evicted too; the open-leak counter must not go
  // negative when its end_span arrives after eviction.
  const TraceContext doomed = t.start_trace("doomed", "h");
  for (int i = 0; i < 16384; ++i) {
    const TraceContext ctx = t.start_trace("churn", "h");
    t.end_span(ctx);
  }
  EXPECT_EQ(t.find_span(doomed.span_id), nullptr);
  EXPECT_EQ(t.dropped(), 1);
  t.end_span(doomed);  // late close of an evicted span: harmless no-op
  EXPECT_GE(t.open_count(), 0);
  // for_each_span visits exactly the retained window, oldest first.
  size_t visited = 0;
  TimePoint prev = TimePoint::origin();
  t.for_each_span([&](const Span& s) {
    visited++;
    EXPECT_GE(s.start, prev);
    prev = s.start;
  });
  EXPECT_EQ(visited, t.span_count());
}

// ---------------------------------------------------------------- traceview

TEST(TraceViewTest, ReassemblesTreeAndRendersHops) {
  Tracer t(7);
  const TraceContext root = t.start_trace("client.put", "app");
  const TraceContext rpc = t.start_span("rpc.call peer.client_put", "c1", root);
  const TraceContext server = t.start_span("rpc.server peer.client_put",
                                           "tiera-1", rpc);
  t.annotate(server, "mode=eventual");
  t.end_span(server);
  t.end_span(rpc);
  t.end_span(root);

  TraceView view(t, root.trace_id);
  EXPECT_EQ(view.span_count(), 3u);
  EXPECT_TRUE(view.well_formed());
  ASSERT_NE(view.root(), nullptr);
  EXPECT_EQ(view.root()->span_id, root.span_id);
  const std::string rendered = view.render();
  EXPECT_NE(rendered.find("client.put"), std::string::npos);
  EXPECT_NE(rendered.find("rpc.server peer.client_put"), std::string::npos);
  EXPECT_NE(rendered.find("mode=eventual"), std::string::npos);
}

TEST(TraceViewTest, OrphanSpanBreaksWellFormedness) {
  Tracer t(7);
  const TraceContext root = t.start_trace("op", "h");
  // Forge a parent that was never retained: the child's parent pointer
  // cannot resolve, which a well-formed tree must reject.
  TraceContext forged = root;
  forged.span_id = root.span_id + 9999;
  const TraceContext orphan = t.start_span("lost", "h", forged);
  t.end_span(orphan);
  t.end_span(root);
  TraceView view(t, root.trace_id);
  EXPECT_EQ(view.span_count(), 2u);
  EXPECT_FALSE(view.well_formed());
}

TEST(TraceViewTest, DroppedRootLeavesHeadlessButRenderableTrace) {
  Tracer t(3);
  // A long-lived trace whose root span is evicted by churn: the children
  // survive, reassembly reports no root and not-well-formed, and render()
  // still produces stable output instead of crashing on the missing parent.
  const TraceContext root = t.start_trace("client.put", "app");
  const TraceContext child = t.start_span("rpc.call", "c1", root);
  t.end_span(child);
  t.end_span(root);
  for (int i = 0; i < 16384; ++i) {
    // Churn one span per iteration until the root (retained first) is gone
    // but the child still fits in the window.
    const TraceContext ctx = t.start_trace("churn", "h");
    t.end_span(ctx);
    if (t.find_span(root.span_id) == nullptr) break;
  }
  ASSERT_EQ(t.find_span(root.span_id), nullptr);
  ASSERT_NE(t.find_span(child.span_id), nullptr);
  TraceView view(t, root.trace_id);
  EXPECT_EQ(view.span_count(), 1u);
  EXPECT_EQ(view.root(), nullptr);
  EXPECT_FALSE(view.well_formed());
  const std::string rendered = view.render();
  EXPECT_EQ(rendered, view.render());  // stable under a headless tree
}

TEST(TraceViewTest, UnknownTraceIsEmpty) {
  Tracer t(7);
  TraceView view(t, 0xdeadbeef);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.root(), nullptr);
  EXPECT_FALSE(view.well_formed());
}

// ------------------------------------------------------------------ journal

TEST(JournalTest, DisabledWithoutSinkEnvVar) {
  unsetenv("WIERA_JOURNAL");
  Journal j;
  EXPECT_FALSE(j.enabled());
  j.event("test", "noop").str("k", "v");  // must be a cheap no-op
  EXPECT_EQ(j.events_written(), 0);
}

TEST(JournalTest, WritesParseableJsonlToFile) {
  const std::string path = ::testing::TempDir() + "/wiera_journal_test.jsonl";
  std::remove(path.c_str());
  setenv("WIERA_JOURNAL", path.c_str(), 1);
  {
    Journal j;
    ASSERT_TRUE(j.enabled());
    j.set_clock([] { return TimePoint::origin() + msec(5); });
    TraceContext ctx{0xabcull, 0x12ull, 0};
    j.event("peer", "repair")
        .str("instance", "NYC")
        .str("key", "k\"0")  // quote must be escaped
        .num("version", int64_t{3})
        .boolean("scrub", true)
        .trace(ctx);
    EXPECT_EQ(j.events_written(), 1);
  }
  unsetenv("WIERA_JOURNAL");

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[1024];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  std::fclose(f);
  const std::string line(buf);
  EXPECT_NE(line.find("\"ts_us\":5000"), std::string::npos) << line;
  EXPECT_NE(line.find("\"component\":\"peer\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"event\":\"repair\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"key\":\"k\\\"0\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"version\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"scrub\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"trace\":\"0x0000000000000abc\""), std::string::npos)
      << line;
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- telemetry

TEST(TelemetryTest, EnabledFlagGatesRetentionAndJournalOnly) {
  unsetenv("WIERA_TELEMETRY");
  unsetenv("WIERA_JOURNAL");
  Telemetry t(/*seed=*/5);
  EXPECT_TRUE(t.enabled());
  t.set_enabled(false);
  EXPECT_FALSE(t.tracer().retain());
  // Metrics keep recording regardless — accessors stay live.
  t.registry().counter("x_total")->inc();
  EXPECT_EQ(t.registry().counter_value("x_total"), 1);
  const TraceContext ctx = t.tracer().start_trace("op", "h");
  EXPECT_TRUE(ctx.active());
  t.tracer().end_span(ctx);
  EXPECT_EQ(t.tracer().span_count(), 0u);
}

// --------------------------------------------------- leaked-span diagnostic

sim::Task<void> leaky_task(sim::Simulation& sim) {
  sim.telemetry().tracer().start_trace("leaky.op", "h");  // never ended
  co_await sim.delay(msec(1));
}

sim::Task<void> clean_task(sim::Simulation& sim) {
  const TraceContext ctx = sim.telemetry().tracer().start_trace("ok.op", "h");
  co_await sim.delay(msec(1));
  sim.telemetry().tracer().end_span(ctx);
}

bool has_leak_diagnostic(const sim::Simulation& sim) {
  for (const auto& d : sim.checker().diagnostics()) {
    if (d.kind == sim::SimDiagnostic::Kind::kLeakedSpan) return true;
  }
  return false;
}

TEST(SimCheckerSpanTest, OpenSpanAtQuiescenceIsReported) {
  sim::Simulation sim(1);
  sim.spawn(leaky_task(sim));
  sim.run();
  EXPECT_TRUE(has_leak_diagnostic(sim));
  EXPECT_EQ(sim.telemetry().tracer().open_count(), 1);
}

TEST(SimCheckerSpanTest, ClosedSpansRaiseNoDiagnostic) {
  sim::Simulation sim(1);
  sim.spawn(clean_task(sim));
  sim.run();
  EXPECT_FALSE(has_leak_diagnostic(sim));
  EXPECT_EQ(sim.telemetry().tracer().open_count(), 0);
}

}  // namespace
}  // namespace wiera::obs
