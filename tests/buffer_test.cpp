// Zero-copy plumbing: Buffer slicing and refcount lifetime, BufferArena
// recycling, BodyView segmentation and copy-on-write corruption, the
// segmented wire codec, and the small-vector containers (SmallVec /
// FlatMap / FlatSet) against their std reference implementations.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "common/small_vec.h"
#include "common/units.h"
#include "rpc/wire.h"
#include "sim/simulation.h"

namespace wiera {
namespace {

Bytes make_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

// ---------------------------------------------------------------- Buffer

TEST(BufferTest, BasicViewAndEquality) {
  Buffer b(make_bytes("hello world"));
  EXPECT_EQ(b.size(), 11u);
  EXPECT_EQ(b.view(), "hello world");
  EXPECT_EQ(b, Buffer(make_bytes("hello world")));
  EXPECT_NE(b, Buffer(make_bytes("hello worle")));
  EXPECT_TRUE(Buffer().empty());
  EXPECT_EQ(Buffer(), Buffer());
}

TEST(BufferTest, SliceSharesStorageWithoutCopying) {
  Buffer whole(make_bytes("0123456789"));
  Buffer mid = whole.slice(2, 5);
  EXPECT_EQ(mid.view(), "23456");
  EXPECT_TRUE(mid.shares_storage_with(whole));
  EXPECT_EQ(mid.data(), whole.data() + 2);

  // Slices of slices stay within the original storage.
  Buffer inner = mid.slice(1, 2);
  EXPECT_EQ(inner.view(), "34");
  EXPECT_TRUE(inner.shares_storage_with(whole));
}

TEST(BufferTest, SliceClampsToEnd) {
  Buffer b(make_bytes("abcdef"));
  EXPECT_EQ(b.slice(4, 100).view(), "ef");
  EXPECT_TRUE(b.slice(6, 1).empty());
  EXPECT_TRUE(b.slice(100, 1).empty());
  // An empty slice holds no storage reference.
  EXPECT_FALSE(b.slice(100, 1).shares_storage_with(b));
}

TEST(BufferTest, RefcountLifetime) {
  Buffer outer(make_bytes("payload"));
  EXPECT_EQ(outer.use_count(), 1);
  {
    Buffer copy = outer;
    Buffer sl = outer.slice(0, 3);
    EXPECT_EQ(outer.use_count(), 3);
    EXPECT_EQ(copy.view(), "payload");
    EXPECT_EQ(sl.view(), "pay");
  }
  EXPECT_EQ(outer.use_count(), 1);

  // The storage outlives the original handle as long as a slice lives.
  Buffer survivor;
  {
    Buffer temp(make_bytes("temporary data"));
    survivor = temp.slice(10, 4);
  }
  EXPECT_EQ(survivor.view(), "data");
  EXPECT_EQ(survivor.use_count(), 1);
}

TEST(BufferTest, ZerosIsAllZero) {
  Buffer z = Buffer::zeros(64);
  ASSERT_EQ(z.size(), 64u);
  for (size_t i = 0; i < z.size(); ++i) EXPECT_EQ(z.data()[i], 0);
}

// ----------------------------------------------------------- BufferArena

TEST(BufferArenaTest, RecyclesCapacityThroughSeal) {
  BufferArena arena;
  Bytes first = arena.acquire(1024);
  first.assign(200, 0xAB);
  const uint8_t* data_ptr = first.data();

  {
    Buffer sealed = arena.seal(std::move(first));
    EXPECT_EQ(sealed.size(), 200u);
    EXPECT_EQ(sealed.data(), data_ptr);
    EXPECT_EQ(arena.pooled(), 0u);  // still referenced
  }
  // Last reference dropped: the byte storage returned to the pool.
  EXPECT_EQ(arena.pooled(), 1u);

  // acquire() hands the same capacity back out, cleared.
  Bytes reused = arena.acquire();
  EXPECT_EQ(reused.data(), data_ptr);
  EXPECT_TRUE(reused.empty());
  EXPECT_GE(reused.capacity(), 1024u);
  EXPECT_EQ(arena.pooled(), 0u);
}

TEST(BufferArenaTest, SealedBufferOutlivesSlicesIndependently) {
  BufferArena arena;
  Buffer slice;
  {
    Bytes b = arena.acquire();
    const std::string text = "the quick brown fox";
    b.assign(text.begin(), text.end());
    Buffer sealed = arena.seal(std::move(b));
    slice = sealed.slice(4, 5);
  }
  // The sealed storage is pinned by the slice, not yet pooled.
  EXPECT_EQ(slice.view(), "quick");
  EXPECT_EQ(arena.pooled(), 0u);
  slice = Buffer();
  EXPECT_EQ(arena.pooled(), 1u);
}

TEST(BufferArenaTest, ManyMessagesReachSteadyState) {
  BufferArena arena;
  for (int round = 0; round < 100; ++round) {
    Bytes b = arena.acquire(256);
    b.assign(100 + (round % 7), static_cast<uint8_t>(round));
    Buffer sealed = arena.seal(std::move(b));
    EXPECT_EQ(sealed.size(), 100u + (round % 7));
  }
  // All storage came back; the pool never grows past one block here because
  // only one buffer is alive at a time.
  EXPECT_EQ(arena.pooled(), 1u);
}

// -------------------------------------------------------------- BodyView

TEST(BodyViewTest, LogicalAddressingAcrossSegments) {
  BodyView body;
  body.append(Buffer(make_bytes("abc")));
  body.append(Buffer());  // empty segments are dropped
  body.append(Buffer(make_bytes("defgh")));
  EXPECT_EQ(body.size(), 8u);
  EXPECT_EQ(body.segment_count(), 2u);
  EXPECT_EQ(body.at(0), 'a');
  EXPECT_EQ(body.at(2), 'c');
  EXPECT_EQ(body.at(3), 'd');
  EXPECT_EQ(body.at(7), 'h');
  EXPECT_EQ(body.flatten(), make_bytes("abcdefgh"));
}

TEST(BodyViewTest, EqualityIsLogicalNotPhysical) {
  BodyView split;
  split.append(Buffer(make_bytes("abc")));
  split.append(Buffer(make_bytes("def")));
  BodyView flat(make_bytes("abcdef"));
  EXPECT_EQ(split, flat);
  BodyView other(make_bytes("abcdefg"));
  EXPECT_NE(split, other);
}

TEST(BodyViewTest, MoveLeavesSourceEmpty) {
  BodyView a(make_bytes("content"));
  BodyView b = std::move(a);
  EXPECT_EQ(b.size(), 7u);
  EXPECT_TRUE(a.empty());        // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.segment_count(), 0u);

  a = std::move(b);
  EXPECT_EQ(a.size(), 7u);
  EXPECT_TRUE(b.empty());        // NOLINT(bugprone-use-after-move)
}

TEST(BodyViewTest, FlipByteIsCopyOnWrite) {
  Buffer shared(make_bytes("0123456789"));
  BodyView body;
  body.append(Buffer(make_bytes("hdr")));
  body.append(shared);

  // Flip a byte inside the shared payload segment.
  body.flip_byte(5);
  EXPECT_EQ(body.at(5), '2' ^ 0x01);
  // The original storage is untouched (other holders see clean bytes)...
  EXPECT_EQ(shared.view(), "0123456789");
  // ...because the affected segment was cloned, not mutated.
  EXPECT_FALSE(body.segment(1).shares_storage_with(shared));
  // The untouched header segment was not cloned.
  EXPECT_EQ(body.segment(0).view(), "hdr");
  // Logical content: only the one byte differs.
  Bytes expect = make_bytes("hdr0123456789");
  expect[5] ^= 0x01;
  EXPECT_EQ(body.flatten(), expect);
}

// -------------------------------------------- segmented wire round trips

TEST(SegmentedWireTest, LargeBlobBecomesSharedSegment) {
  const Blob payload = Blob::zeros(rpc::kZeroCopyThreshold);
  rpc::WireWriter w;
  w.put_string("key");
  w.put_blob(payload);
  w.put_u32(7);
  BodyView body = w.take_body();
  // scratch(header) + payload + scratch(trailer)
  EXPECT_EQ(body.segment_count(), 3u);
  EXPECT_TRUE(body.segment(1).shares_storage_with(payload.buffer()));

  rpc::WireReader r(body);
  EXPECT_EQ(r.get_string(), "key");
  Blob decoded = r.get_blob();
  EXPECT_EQ(r.get_u32(), 7u);
  EXPECT_TRUE(r.ok());
  // The decoded blob aliases the sender's payload storage: zero copies.
  EXPECT_TRUE(decoded.buffer().shares_storage_with(payload.buffer()));
  EXPECT_EQ(decoded, payload);
}

TEST(SegmentedWireTest, SmallBlobStaysInline) {
  const Blob payload = Blob::zeros(rpc::kZeroCopyThreshold - 1);
  rpc::WireWriter w;
  w.put_string("key");
  w.put_blob(payload);
  BodyView body = w.take_body();
  EXPECT_EQ(body.segment_count(), 1u);

  rpc::WireReader r(body);
  EXPECT_EQ(r.get_string(), "key");
  EXPECT_EQ(r.get_blob(), payload);
  EXPECT_TRUE(r.ok());
}

TEST(SegmentedWireTest, SegmentedLayoutMatchesFlatLayout) {
  // The logical byte string must be identical whether the body is taken
  // segmented (take_body) or flat (take) — wire_size, transfer times and
  // the determinism trace all hang off this.
  auto build = [](rpc::WireWriter& w) {
    w.put_string("object/with/path");
    w.put_i64(-12345);
    w.put_blob(Blob(std::string_view("short")));
    w.put_blob(Blob::zeros(300));
    w.put_u32(0xDEADBEEF);
  };
  rpc::WireWriter seg;
  build(seg);
  rpc::WireWriter flat;
  build(flat);
  EXPECT_EQ(seg.take_body().flatten(), flat.take());
}

TEST(SegmentedWireTest, ChecksumOverAliasedViewMatchesCopiedPath) {
  // Decoding zero-copy must not change what integrity sees: the checksum
  // over a decoded aliasing Blob equals the checksum over a full copy.
  Bytes raw(1000);
  Rng rng(42);
  for (auto& b : raw) b = static_cast<uint8_t>(rng.next_u64());
  const Blob payload{Bytes(raw)};

  rpc::WireWriter w;
  w.put_blob(payload);
  BodyView body = w.take_body();
  rpc::WireReader r(body);
  Blob aliased = r.get_blob();
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(aliased.buffer().shares_storage_with(payload.buffer()));

  Blob copied{Bytes(raw)};
  EXPECT_EQ(object_checksum("some-key", 9, aliased),
            object_checksum("some-key", 9, copied));
}

TEST(SegmentedWireTest, DecodedBlobKeepsBodyStorageAliveAcrossAwait) {
  // Refcount lifetime through the real async pattern: a coroutine decodes
  // a blob from a message body, the message dies, the coroutine suspends —
  // the blob must still be valid afterwards because it pins the storage.
  sim::Simulation sim;
  Blob held;
  long held_refs = 0;
  auto flow = [&]() -> sim::Task<void> {
    {
      const Blob payload = Blob::zeros(4096);
      rpc::WireWriter w;
      w.put_blob(payload);
      BodyView body = w.take_body();
      rpc::WireReader r(body);
      held = r.get_blob();
    }  // body and payload are gone; `held` is the only reference left
    co_await sim.delay(msec(5));
    held_refs = held.buffer().use_count();
    co_return;
  };
  sim.spawn(flow());
  sim.run();
  EXPECT_EQ(held_refs, 1);
  EXPECT_EQ(held.size(), 4096u);
  for (size_t i = 0; i < held.size(); i += 97) EXPECT_EQ(held.data()[i], 0);
}

// -------------------------------------------------------------- SmallVec

TEST(SmallVecTest, InlineThenSpill) {
  SmallVec<std::string, 2> v;
  v.push_back("a");
  v.push_back("b");
  EXPECT_EQ(v.size(), 2u);
  v.push_back("c");  // spills to heap
  v.push_back("d");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[3], "d");
}

TEST(SmallVecTest, MoveStealsOrMovesElements) {
  SmallVec<std::string, 2> inline_v;
  inline_v.push_back("x");
  SmallVec<std::string, 2> from_inline = std::move(inline_v);
  ASSERT_EQ(from_inline.size(), 1u);
  EXPECT_EQ(from_inline[0], "x");
  EXPECT_TRUE(inline_v.empty());  // NOLINT(bugprone-use-after-move)

  SmallVec<std::string, 2> heap_v;
  for (int i = 0; i < 10; ++i) heap_v.push_back(std::to_string(i));
  SmallVec<std::string, 2> from_heap = std::move(heap_v);
  ASSERT_EQ(from_heap.size(), 10u);
  EXPECT_EQ(from_heap[9], "9");
  EXPECT_TRUE(heap_v.empty());    // NOLINT(bugprone-use-after-move)
}

TEST(SmallVecTest, PropertyVsStdVector) {
  Rng rng(7);
  SmallVec<int, 4> sv;
  std::vector<int> ref;
  for (int step = 0; step < 2000; ++step) {
    const uint64_t action = rng.next_u64() % 4;
    if (action <= 1 || ref.empty()) {
      const int value = static_cast<int>(rng.next_u64() % 1000);
      sv.push_back(value);
      ref.push_back(value);
    } else if (action == 2) {
      const size_t pos = rng.next_u64() % (ref.size() + 1);
      const int value = static_cast<int>(rng.next_u64() % 1000);
      sv.insert(sv.begin() + pos, value);
      ref.insert(ref.begin() + pos, value);
    } else {
      const size_t pos = rng.next_u64() % ref.size();
      sv.erase(sv.begin() + pos);
      ref.erase(ref.begin() + pos);
    }
    ASSERT_EQ(sv.size(), ref.size());
  }
  for (size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(sv[i], ref[i]);
}

// ------------------------------------------------------ FlatMap / FlatSet

TEST(FlatMapTest, OrderedIterationAndLookup) {
  FlatMap<int64_t, std::string, 4> m;
  m.insert_or_assign(3, "three");
  m.insert_or_assign(1, "one");
  m.insert_or_assign(2, "two");
  m.insert_or_assign(1, "ONE");  // overwrite

  ASSERT_EQ(m.size(), 3u);
  std::vector<int64_t> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(m.find(1)->second, "ONE");
  EXPECT_EQ(m.rbegin()->first, 3);
  EXPECT_TRUE(m.contains(2));
  EXPECT_FALSE(m.contains(4));
  EXPECT_EQ(m.count(9), 0u);

  m.erase(2);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find(2), m.end());
}

TEST(FlatMapTest, PropertyVsStdMap) {
  Rng rng(11);
  FlatMap<int64_t, int64_t, 4> fm;
  std::map<int64_t, int64_t> ref;
  for (int step = 0; step < 3000; ++step) {
    const int64_t key = static_cast<int64_t>(rng.next_u64() % 40);
    const uint64_t action = rng.next_u64() % 4;
    if (action <= 1) {
      const int64_t value = static_cast<int64_t>(rng.next_u64() % 1000);
      fm[key] = value;
      ref[key] = value;
    } else if (action == 2) {
      fm.erase(key);
      ref.erase(key);
    } else {
      auto fit = fm.lower_bound(key);
      auto rit = ref.lower_bound(key);
      ASSERT_EQ(fit == fm.end(), rit == ref.end());
      if (fit != fm.end()) {
        ASSERT_EQ(fit->first, rit->first);
        ASSERT_EQ(fit->second, rit->second);
      }
    }
    ASSERT_EQ(fm.size(), ref.size());
  }
  // Full in-order comparison, both directions.
  auto fit = fm.begin();
  for (const auto& [k, v] : ref) {
    ASSERT_EQ(fit->first, k);
    ASSERT_EQ(fit->second, v);
    ++fit;
  }
  auto frit = fm.rbegin();
  for (auto rit = ref.rbegin(); rit != ref.rend(); ++rit, ++frit) {
    ASSERT_EQ(frit->first, rit->first);
  }
}

TEST(FlatSetTest, PropertyVsStdSet) {
  Rng rng(13);
  FlatSet<std::string, 4> fs;
  std::set<std::string> ref;
  for (int step = 0; step < 2000; ++step) {
    const std::string key = "k" + std::to_string(rng.next_u64() % 30);
    if (rng.next_u64() % 3 != 0) {
      auto [it, inserted] = fs.insert(key);
      const bool ref_inserted = ref.insert(key).second;
      ASSERT_EQ(inserted, ref_inserted);
      ASSERT_EQ(*it, key);
    } else {
      ASSERT_EQ(fs.erase(key), ref.erase(key));
    }
    ASSERT_EQ(fs.size(), ref.size());
    ASSERT_EQ(fs.contains(key), ref.count(key) > 0);
  }
  auto fit = fs.begin();
  for (const auto& k : ref) {
    ASSERT_EQ(*fit, k);
    ++fit;
  }
}

}  // namespace
}  // namespace wiera
