// Tests for the §3.1 network/workload monitors, the placement advisor, and
// §4.4 replica maintenance (replacement spawning + primary failover).
#include <gtest/gtest.h>

#include <memory>

#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "wiera/client.h"
#include "wiera/controller.h"
#include "wiera/monitors.h"

namespace wiera::geo {
namespace {

// ------------------------------------------------------------ unit level

TEST(NetworkMonitorTest, TracksRequestAndLinkLatency) {
  NetworkMonitor monitor;
  monitor.record_request_latency("a", msec(10));
  monitor.record_request_latency("a", msec(20));
  monitor.record_request_latency("b", msec(100));
  monitor.record_link_latency("a", "b", msec(70));

  ASSERT_NE(monitor.request_latency("a"), nullptr);
  EXPECT_EQ(monitor.request_latency("a")->count(), 2);
  EXPECT_EQ(monitor.request_latency("a")->mean().us(), 15000);
  EXPECT_EQ(monitor.request_latency("zz"), nullptr);
  ASSERT_NE(monitor.link_latency("a", "b"), nullptr);
  EXPECT_EQ(monitor.link_latency("b", "a"), nullptr);  // directional
  EXPECT_EQ(monitor.slowest_instance(), "b");

  monitor.reset();
  EXPECT_EQ(monitor.slowest_instance(), "");
}

TEST(WorkloadMonitorTest, AggregatesPerInstance) {
  WorkloadMonitor monitor;
  monitor.record_request("us-west", true, 1000);
  monitor.record_request("us-west", false, 3000);
  monitor.record_request("eu-west", false, 2000);

  ASSERT_NE(monitor.counters("us-west"), nullptr);
  EXPECT_EQ(monitor.counters("us-west")->puts, 1);
  EXPECT_EQ(monitor.counters("us-west")->gets, 1);
  EXPECT_EQ(monitor.counters("us-west")->bytes, 4000);
  EXPECT_EQ(monitor.total_requests(), 3);
  EXPECT_EQ(monitor.busiest_instance(), "us-west");
  EXPECT_DOUBLE_EQ(monitor.mean_object_size(), 2000.0);

  monitor.reset();
  EXPECT_EQ(monitor.total_requests(), 0);
  EXPECT_EQ(monitor.busiest_instance(), "");
  EXPECT_DOUBLE_EQ(monitor.mean_object_size(), 0.0);
}

TEST(PlacementAdvisorTest, NeedsEnoughSignal) {
  WorkloadMonitor monitor;
  PlacementAdvisor advisor(/*min_requests=*/10);
  for (int i = 0; i < 5; ++i) monitor.record_request("asia", false, 100);
  EXPECT_EQ(advisor.recommend_primary(monitor), "");  // not enough data
  for (int i = 0; i < 10; ++i) monitor.record_request("asia", false, 100);
  EXPECT_EQ(advisor.recommend_primary(monitor), "asia");
}

// ------------------------------------------------------------ integrated

struct Cluster {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  WieraController controller;
  std::vector<std::unique_ptr<TieraServer>> servers;

  explicit Cluster(int min_replicas)
      : sim(3),
        network(sim, make_topology()),
        controller(sim, network, registry,
                   WieraController::Config{"wiera-controller", sec(1),
                                           min_replicas}) {
    // Five servers: four for the instance, one spare.
    for (const char* node : {"tiera-us-west", "tiera-us-east",
                             "tiera-eu-west", "tiera-asia-east",
                             "tiera-spare"}) {
      servers.push_back(
          std::make_unique<TieraServer>(sim, network, registry, node));
      controller.register_server(servers.back().get());
    }
  }

  static net::Topology make_topology() {
    net::Topology topo = net::Topology::paper_default();
    topo.set_jitter_fraction(0.0);
    topo.add_node("wiera-controller", "aws-us-east");
    topo.add_node("tiera-us-west", "aws-us-west");
    topo.add_node("tiera-us-east", "aws-us-east");
    topo.add_node("tiera-eu-west", "aws-eu-west");
    topo.add_node("tiera-asia-east", "aws-asia-east");
    topo.add_node("tiera-spare", "aws-us-east");
    topo.add_node("client-us-west", "aws-us-west");
    return topo;
  }
};

TEST(MonitorsIntegrationTest, PeersFeedControllerMonitors) {
  Cluster cluster(/*min_replicas=*/0);
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::eventual_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  bool done = false;
  auto body = [](WieraClient& c, bool& flag,
                 sim::Simulation& s) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await c.put("k" + std::to_string(i), Blob::zeros(2048));
      auto r = co_await c.get("k" + std::to_string(i));
      EXPECT_TRUE(r.ok());
    }
    flag = true;
    s.stop();
  };
  cluster.sim.spawn(body(client, done, cluster.sim));
  cluster.sim.run();
  ASSERT_TRUE(done);

  // Workload monitor saw the traffic, all at the closest (US West) peer.
  EXPECT_EQ(cluster.controller.workload_monitor().busiest_instance(),
            "tiera-us-west");
  const auto* counters =
      cluster.controller.workload_monitor().counters("tiera-us-west");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->puts, 20);
  EXPECT_EQ(counters->gets, 20);
  EXPECT_DOUBLE_EQ(cluster.controller.workload_monitor().mean_object_size(),
                   2048.0);
  // Network monitor recorded request latencies there too.
  ASSERT_NE(cluster.controller.network_monitor().request_latency(
                "tiera-us-west"),
            nullptr);
  EXPECT_GE(cluster.controller.network_monitor()
                .request_latency("tiera-us-west")
                ->count(),
            40);
  // Placement advisor recommends keeping the primary near the traffic
  // (needs >= 100 samples by default; we only have 40 -> "").
  EXPECT_EQ(cluster.controller.recommend_primary("w1"), "");
}

TEST(MonitorsIntegrationTest, AdvisorRecommendsBusiestRegion) {
  Cluster cluster(0);
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::eventual_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  bool done = false;
  auto body = [](WieraClient& c, bool& flag,
                 sim::Simulation& s) -> sim::Task<void> {
    for (int i = 0; i < 120; ++i) {
      auto r = co_await c.get("missing-key");
      (void)r;  // misses still count as requests
    }
    flag = true;
    s.stop();
  };
  cluster.sim.spawn(body(client, done, cluster.sim));
  cluster.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster.controller.recommend_primary("w1"), "tiera-us-west");
  EXPECT_EQ(cluster.controller.recommend_primary("no-such-instance"), "");
}

// ------------------------------------------------------------ §4.4

TEST(ReplicaMaintenanceTest, SpawnsReplacementOnSpareServer) {
  Cluster cluster(/*min_replicas=*/4);
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::eventual_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());
  ASSERT_EQ(peers->size(), 4u);
  cluster.controller.start();

  // EU goes down permanently at t=3s; heartbeats detect it and the spare
  // US East server hosts the replacement.
  cluster.network.topology().inject_outage(
      "tiera-eu-west", TimePoint(sec(3).us()), TimePoint::max());
  cluster.sim.run_until(TimePoint(sec(15).us()));

  EXPECT_GE(cluster.controller.replacements_spawned(), 1);
  auto members = cluster.controller.get_instances("w1");
  ASSERT_TRUE(members.ok());
  EXPECT_NE(std::find(members->begin(), members->end(), "tiera-spare"),
            members->end());
  WieraPeer* replacement = cluster.controller.peer("tiera-spare");
  ASSERT_NE(replacement, nullptr);

  // The replacement participates in replication: a put from US West
  // reaches it after a queue flush.
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *members);
  bool done = false;
  auto body = [](WieraClient& c, bool& flag,
                 sim::Simulation& s) -> sim::Task<void> {
    auto put = co_await c.put("after-failure", Blob("v"));
    EXPECT_TRUE(put.ok());
    co_await s.delay(sec(2));
    flag = true;
    s.stop();
  };
  cluster.sim.spawn(body(client, done, cluster.sim));
  cluster.sim.run();
  ASSERT_TRUE(done);
  EXPECT_NE(replacement->local().meta().find("after-failure"), nullptr);
  cluster.controller.stop();
}

TEST(ReplicaMaintenanceTest, PrimaryFailoverPromotesLivePeer) {
  Cluster cluster(/*min_replicas=*/3);
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::primary_backup_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());
  ASSERT_EQ(cluster.controller.current_primary("w1"), "tiera-us-west");
  cluster.controller.start();

  // Kill the primary.
  cluster.network.topology().inject_outage(
      "tiera-us-west", TimePoint(sec(3).us()), TimePoint::max());
  cluster.sim.run_until(TimePoint(sec(15).us()));

  const std::string new_primary = cluster.controller.current_primary("w1");
  EXPECT_NE(new_primary, "tiera-us-west");
  EXPECT_FALSE(new_primary.empty());
  WieraPeer* promoted = cluster.controller.peer(new_primary);
  ASSERT_NE(promoted, nullptr);
  EXPECT_TRUE(promoted->is_primary());
  cluster.controller.stop();
}

TEST(ReplicaMaintenanceTest, NoSpareNoReplacement) {
  // With min_replicas demanded but no spare server, maintenance is a no-op
  // (no crash, no bogus member).
  sim::Simulation sim(3);
  net::Topology topo = Cluster::make_topology();
  net::Network network(sim, std::move(topo));
  rpc::Registry registry;
  WieraController controller(
      sim, network, registry,
      WieraController::Config{"wiera-controller", sec(1), 4});
  std::vector<std::unique_ptr<TieraServer>> servers;
  for (const char* node : {"tiera-us-west", "tiera-us-east",
                           "tiera-eu-west", "tiera-asia-east"}) {
    servers.push_back(
        std::make_unique<TieraServer>(sim, network, registry, node));
    controller.register_server(servers.back().get());
  }
  WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::eventual_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());
  controller.start();
  network.topology().inject_outage("tiera-eu-west", TimePoint(sec(3).us()),
                                   TimePoint::max());
  sim.run_until(TimePoint(sec(15).us()));
  EXPECT_EQ(controller.replacements_spawned(), 0);
  EXPECT_EQ(controller.get_instances("w1")->size(), 4u);
  controller.stop();
}

}  // namespace
}  // namespace wiera::geo
