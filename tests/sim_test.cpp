// Tests for the discrete-event simulation kernel: scheduling, virtual time,
// task composition, synchronization primitives, determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/time.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace wiera::sim {
namespace {

// ------------------------------------------------------------ basics

Task<void> note_at(Simulation& sim, Duration d, std::vector<int64_t>& log) {
  co_await sim.delay(d);
  log.push_back(sim.now().us());
}

TEST(SimulationTest, DelayAdvancesVirtualClock) {
  Simulation sim;
  std::vector<int64_t> log;
  sim.spawn(note_at(sim, msec(10), log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 10000);
  EXPECT_EQ(sim.now().us(), 10000);
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int64_t> log;
  sim.spawn(note_at(sim, msec(30), log));
  sim.spawn(note_at(sim, msec(10), log));
  sim.spawn(note_at(sim, msec(20), log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int64_t>{10000, 20000, 30000}));
}

Task<void> tag(std::vector<std::string>& log, std::string name) {
  log.push_back(std::move(name));
  co_return;
}

TEST(SimulationTest, SameTimeEventsRunInSpawnOrder) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn(tag(log, "a"));
  sim.spawn(tag(log, "b"));
  sim.spawn(tag(log, "c"));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SimulationTest, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  std::vector<int64_t> log;
  sim.spawn(note_at(sim, msec(10), log));
  sim.spawn(note_at(sim, msec(20), log));
  sim.spawn(note_at(sim, msec(30), log));
  sim.run_until(TimePoint(20000));
  EXPECT_EQ(log, (std::vector<int64_t>{10000, 20000}));
  EXPECT_EQ(sim.now().us(), 20000);
  sim.run();
  EXPECT_EQ(log.size(), 3u);
}

TEST(SimulationTest, RunUntilAdvancesClockEvenWithEmptyQueue) {
  Simulation sim;
  sim.run_until(TimePoint(5000));
  EXPECT_EQ(sim.now().us(), 5000);
}

Task<void> stopper(Simulation& sim, Duration d) {
  co_await sim.delay(d);
  sim.stop();
}

TEST(SimulationTest, StopHaltsRun) {
  Simulation sim;
  std::vector<int64_t> log;
  sim.spawn(stopper(sim, msec(15)));
  sim.spawn(note_at(sim, msec(10), log));
  sim.spawn(note_at(sim, msec(20), log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int64_t>{10000}));
}

TEST(SimulationTest, ZeroDelayDoesNotSuspendTime) {
  Simulation sim;
  std::vector<int64_t> log;
  sim.spawn(note_at(sim, Duration::zero(), log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int64_t>{0}));
}

TEST(SimulationTest, EventsExecutedCounter) {
  Simulation sim;
  std::vector<int64_t> log;
  sim.spawn(note_at(sim, msec(1), log));
  sim.run();
  EXPECT_GE(sim.events_executed(), 2u);  // spawn-start + delay resume
}

// ------------------------------------------------------------ task composition

Task<int> value_after(Simulation& sim, Duration d, int v) {
  co_await sim.delay(d);
  co_return v;
}

Task<void> await_child(Simulation& sim, int& out) {
  out = co_await value_after(sim, msec(5), 17);
  out += co_await value_after(sim, msec(5), 3);
}

TEST(TaskTest, ChildTasksReturnValuesAndTakeTime) {
  Simulation sim;
  int out = 0;
  sim.spawn(await_child(sim, out));
  sim.run();
  EXPECT_EQ(out, 20);
  EXPECT_EQ(sim.now().us(), 10000);  // sequential awaits add up
}

Task<std::string> immediate(std::string v) { co_return v; }

Task<void> await_immediate(std::string& out) {
  out = co_await immediate("done");
}

TEST(TaskTest, ImmediateCompletionWorks) {
  Simulation sim;
  std::string out;
  sim.spawn(await_immediate(out));
  sim.run();
  EXPECT_EQ(out, "done");
  EXPECT_EQ(sim.now().us(), 0);
}

Task<void> deep(Simulation& sim, int depth, int& counter) {
  if (depth == 0) {
    counter++;
    co_return;
  }
  co_await sim.delay(usec(1));
  co_await deep(sim, depth - 1, counter);
}

TEST(TaskTest, DeepAwaitChains) {
  Simulation sim;
  int counter = 0;
  sim.spawn(deep(sim, 500, counter));
  sim.run();
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(sim.now().us(), 500);
}

TEST(SimulationTest, DestructionReclaimsSuspendedTasks) {
  // A task suspended forever must be destroyed with the simulation without
  // leaking or crashing.
  auto leak_check = [] {
    Simulation sim;
    std::vector<int64_t> log;
    sim.spawn(note_at(sim, hoursd(10), log));
    sim.run_until(TimePoint(1000));
    EXPECT_TRUE(log.empty());
    // sim destructor runs here with the task still suspended
  };
  leak_check();
  SUCCEED();
}

// ------------------------------------------------------------ when_all

TEST(WhenAllTest, RunsConcurrentlyInVirtualTime) {
  Simulation sim;
  std::vector<int> results;
  int64_t finish_us = -1;
  auto driver = [](Simulation& s, std::vector<int>& out,
                   int64_t& finish) -> Task<void> {
    std::vector<Task<int>> tasks;
    tasks.push_back(value_after(s, msec(30), 1));
    tasks.push_back(value_after(s, msec(10), 2));
    tasks.push_back(value_after(s, msec(20), 3));
    out = co_await when_all(s, std::move(tasks));
    finish = s.now().us();
  };
  sim.spawn(driver(sim, results, finish_us));
  sim.run();
  EXPECT_EQ(results, (std::vector<int>{1, 2, 3}));  // input order preserved
  EXPECT_EQ(finish_us, 30000);  // max, not sum: tasks ran concurrently
}

Task<void> void_sleeper(Simulation& sim, Duration d, int& counter) {
  co_await sim.delay(d);
  counter++;
}

TEST(WhenAllTest, VoidOverloadJoinsAll) {
  Simulation sim;
  int counter = 0;
  int64_t finish_us = -1;
  auto driver = [](Simulation& s, int& c, int64_t& finish) -> Task<void> {
    std::vector<Task<void>> tasks;
    tasks.push_back(void_sleeper(s, msec(30), c));
    tasks.push_back(void_sleeper(s, msec(10), c));
    tasks.push_back(void_sleeper(s, msec(20), c));
    co_await when_all(s, std::move(tasks));
    finish = s.now().us();
  };
  sim.spawn(driver(sim, counter, finish_us));
  sim.run();
  EXPECT_EQ(counter, 3);
  EXPECT_EQ(finish_us, 30000);  // concurrent, not sequential

  // Empty batch completes immediately.
  bool done = false;
  auto empty_driver = [](Simulation& s, bool& flag) -> Task<void> {
    co_await when_all(s, std::vector<Task<void>>{});
    flag = true;
  };
  sim.spawn(empty_driver(sim, done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(WhenAllTest, EmptyVectorCompletesImmediately) {
  Simulation sim;
  bool done = false;
  auto driver = [](Simulation& s, bool& flag) -> Task<void> {
    auto results = co_await when_all(s, std::vector<Task<int>>{});
    flag = results.empty();
  };
  sim.spawn(driver(sim, done));
  sim.run();
  EXPECT_TRUE(done);
}

// ------------------------------------------------------------ Event

Task<void> waiter(Event& e, Simulation& sim, std::vector<int64_t>& log) {
  co_await e.wait();
  log.push_back(sim.now().us());
}

Task<void> setter(Event& e, Simulation& sim, Duration d) {
  co_await sim.delay(d);
  e.set();
}

TEST(EventTest, WaitersWakeWhenSet) {
  Simulation sim;
  Event e(sim);
  std::vector<int64_t> log;
  sim.spawn(waiter(e, sim, log));
  sim.spawn(waiter(e, sim, log));
  sim.spawn(setter(e, sim, msec(7)));
  sim.run();
  EXPECT_EQ(log, (std::vector<int64_t>{7000, 7000}));
}

TEST(EventTest, SetBeforeWaitPassesThrough) {
  Simulation sim;
  Event e(sim);
  e.set();
  std::vector<int64_t> log;
  sim.spawn(waiter(e, sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int64_t>{0}));
}

TEST(EventTest, ResetBlocksAgain) {
  Simulation sim;
  Event e(sim);
  e.set();
  e.reset();
  std::vector<int64_t> log;
  sim.spawn(waiter(e, sim, log));
  sim.run_until(TimePoint(1000));
  EXPECT_TRUE(log.empty());
}

// ------------------------------------------------------------ SimMutex

Task<void> critical(SimMutex& m, Simulation& sim, Duration hold,
                    std::vector<std::pair<int64_t, int64_t>>& spans) {
  co_await m.lock();
  const int64_t start = sim.now().us();
  co_await sim.delay(hold);
  spans.emplace_back(start, sim.now().us());
  m.unlock();
}

TEST(SimMutexTest, SerializesCriticalSectionsFifo) {
  Simulation sim;
  SimMutex m(sim);
  std::vector<std::pair<int64_t, int64_t>> spans;
  for (int i = 0; i < 3; ++i) sim.spawn(critical(m, sim, msec(10), spans));
  sim.run();
  ASSERT_EQ(spans.size(), 3u);
  // No overlap, FIFO order.
  EXPECT_EQ(spans[0], (std::pair<int64_t, int64_t>{0, 10000}));
  EXPECT_EQ(spans[1], (std::pair<int64_t, int64_t>{10000, 20000}));
  EXPECT_EQ(spans[2], (std::pair<int64_t, int64_t>{20000, 30000}));
}

TEST(SimMutexTest, UncontendedLockIsImmediate) {
  Simulation sim;
  SimMutex m(sim);
  std::vector<std::pair<int64_t, int64_t>> spans;
  sim.spawn(critical(m, sim, Duration::zero(), spans));
  sim.run();
  EXPECT_FALSE(m.locked());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].first, 0);
}

// ------------------------------------------------------------ SimSemaphore

Task<void> sem_user(SimSemaphore& s, Simulation& sim, Duration hold,
                    int& active, int& max_active) {
  co_await s.acquire();
  active++;
  max_active = std::max(max_active, active);
  co_await sim.delay(hold);
  active--;
  s.release();
}

TEST(SimSemaphoreTest, LimitsConcurrency) {
  Simulation sim;
  SimSemaphore s(sim, 2);
  int active = 0, max_active = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn(sem_user(s, sim, msec(5), active, max_active));
  }
  sim.run();
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sim.now().us(), 15000);  // 6 users / 2 slots * 5ms
}

TEST(SimSemaphoreTest, ReleaseMultiple) {
  Simulation sim;
  SimSemaphore s(sim, 0);
  int active = 0, max_active = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(sem_user(s, sim, msec(1), active, max_active));
  }
  sim.run_until(TimePoint(100));
  EXPECT_EQ(max_active, 0);  // all blocked
  s.release(3);
  sim.run();
  EXPECT_EQ(max_active, 3);
}

// ------------------------------------------------------------ Channel

Task<void> consumer(Channel<int>& ch, std::vector<int>& out) {
  while (true) {
    auto item = co_await ch.recv();
    if (!item) break;
    out.push_back(*item);
  }
}

Task<void> producer(Channel<int>& ch, Simulation& sim, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim.delay(msec(1));
    ch.send(i);
  }
  ch.close();
}

TEST(ChannelTest, DeliversInOrderAndTerminatesOnClose) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> out;
  sim.spawn(consumer(ch, out));
  sim.spawn(producer(ch, sim, 5));
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, BufferedSendsBeforeReceiver) {
  Simulation sim;
  Channel<int> ch(sim);
  ch.send(1);
  ch.send(2);
  ch.close();
  std::vector<int> out;
  sim.spawn(consumer(ch, out));
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, TryRecvNonBlocking) {
  Simulation sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(9);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(ChannelTest, MultipleConsumersEachGetItems) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> out1, out2;
  sim.spawn(consumer(ch, out1));
  sim.spawn(consumer(ch, out2));
  sim.spawn(producer(ch, sim, 10));
  sim.run();
  EXPECT_EQ(out1.size() + out2.size(), 10u);
}

// ------------------------------------------------------------ Future/Promise

Task<void> fulfil_later(Simulation& sim, Promise<int> p, Duration d, int v) {
  co_await sim.delay(d);
  p.set_value(v);
}

Task<void> await_future(Future<int> f, Simulation& sim, int& out,
                        int64_t& when) {
  out = co_await f;
  when = sim.now().us();
}

TEST(FutureTest, AwaitBlocksUntilFulfilled) {
  Simulation sim;
  Promise<int> p(sim);
  int out = 0;
  int64_t when = -1;
  sim.spawn(await_future(p.future(), sim, out, when));
  sim.spawn(fulfil_later(sim, p, msec(42), 99));
  sim.run();
  EXPECT_EQ(out, 99);
  EXPECT_EQ(when, 42000);
}

TEST(FutureTest, AlreadyFulfilledIsImmediate) {
  Simulation sim;
  Promise<int> p(sim);
  p.set_value(5);
  int out = 0;
  int64_t when = -1;
  sim.spawn(await_future(p.future(), sim, out, when));
  sim.run();
  EXPECT_EQ(out, 5);
  EXPECT_EQ(when, 0);
}

TEST(FutureTest, MultipleAwaitersAllGetValue) {
  Simulation sim;
  Promise<int> p(sim);
  int out1 = 0, out2 = 0;
  int64_t w1, w2;
  sim.spawn(await_future(p.future(), sim, out1, w1));
  sim.spawn(await_future(p.future(), sim, out2, w2));
  sim.spawn(fulfil_later(sim, p, msec(1), 7));
  sim.run();
  EXPECT_EQ(out1, 7);
  EXPECT_EQ(out2, 7);
}

// ------------------------------------------------------------ edge cases

TEST(WhenAllTest, EmptyVectorDoesNotAdvanceTimeAndIsRepeatable) {
  Simulation sim;
  int completions = 0;
  auto driver = [](Simulation& s, int& done) -> Task<void> {
    auto r1 = co_await when_all(s, std::vector<Task<int>>{});
    co_await when_all(s, std::vector<Task<void>>{});
    auto r2 = co_await when_all(s, std::vector<Task<int>>{});
    done = static_cast<int>(r1.size() + r2.size()) + 1;
  };
  sim.spawn(driver(sim, completions));
  sim.run();
  EXPECT_EQ(completions, 1);       // both empty result vectors
  EXPECT_EQ(sim.now().us(), 0);    // nothing scheduled, no time passed
}

TEST(ChannelTest, CloseWakesAllPendingReceiversWithNullopt) {
  Simulation sim;
  Channel<int> ch(sim);
  int woken = 0;
  std::vector<int64_t> wake_times;
  auto rx = [](Channel<int>* c, Simulation* s, int& n,
               std::vector<int64_t>& t) -> Task<void> {
    auto item = co_await c->recv();
    EXPECT_FALSE(item.has_value());  // closed, nothing buffered
    n++;
    t.push_back(s->now().us());
  };
  sim.spawn(rx(&ch, &sim, woken, wake_times));
  sim.spawn(rx(&ch, &sim, woken, wake_times));
  sim.run_until(TimePoint(3000));  // both receivers are now blocked
  EXPECT_EQ(woken, 0);
  ch.close();
  sim.run();
  EXPECT_EQ(woken, 2);
  EXPECT_EQ(wake_times, (std::vector<int64_t>{3000, 3000}));
}

TEST(SimSemaphoreTest, ReleaseZeroIsANoOp) {
  Simulation sim;
  SimSemaphore s(sim, 0);
  int acquired = 0;
  auto user = [](SimSemaphore* sem, int& n) -> Task<void> {
    co_await sem->acquire();
    n++;
  };
  sim.spawn(user(&s, acquired));
  sim.run();
  EXPECT_EQ(acquired, 0);  // blocked
  s.release(0);
  sim.run();
  EXPECT_EQ(acquired, 0);  // release(0) woke nobody, added no tokens
  EXPECT_EQ(s.available(), 0);
  s.release(1);
  sim.run();
  EXPECT_EQ(acquired, 1);
}

TEST(EventTest, ResetRacingReWaitInVirtualTime) {
  Simulation sim;
  Event e(sim);
  std::vector<std::string> log;
  // Waiter A is already suspended when set() fires; reset() at the same
  // virtual instant must not revoke A's scheduled wakeup, but a fresh
  // waiter B arriving after the reset must block.
  auto wait_and_log = [](Event* ev, std::vector<std::string>* out,
                         std::string tag) -> Task<void> {
    co_await ev->wait();
    out->push_back(std::move(tag));
  };
  sim.spawn(wait_and_log(&e, &log, "A"));
  sim.run_until(TimePoint(1000));
  e.set();
  e.reset();  // same virtual time as set(): A's wakeup is already queued
  sim.spawn(wait_and_log(&e, &log, "B"));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"A"}));  // B still blocked
  EXPECT_FALSE(e.is_set());
  e.set();
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"A", "B"}));
}

// ------------------------------------------------------------ determinism

Task<void> jitter_worker(Simulation& sim, std::vector<int64_t>& log, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim.delay(usec(static_cast<int64_t>(sim.rng().uniform(100, 900))));
    log.push_back(sim.now().us());
  }
}

std::vector<int64_t> run_jitter(uint64_t seed) {
  Simulation sim(seed);
  std::vector<int64_t> log;
  for (int w = 0; w < 4; ++w) sim.spawn(jitter_worker(sim, log, 25));
  sim.run();
  return log;
}

TEST(DeterminismTest, SameSeedSameTrace) {
  EXPECT_EQ(run_jitter(7), run_jitter(7));
}

TEST(DeterminismTest, DifferentSeedDifferentTrace) {
  EXPECT_NE(run_jitter(7), run_jitter(8));
}

// Property-style sweep: FIFO mutex fairness holds for many contender counts.
class MutexFairness : public ::testing::TestWithParam<int> {};

TEST_P(MutexFairness, AllContendersServedInOrder) {
  const int n = GetParam();
  Simulation sim;
  SimMutex m(sim);
  std::vector<std::pair<int64_t, int64_t>> spans;
  for (int i = 0; i < n; ++i) sim.spawn(critical(m, sim, msec(2), spans));
  sim.run();
  ASSERT_EQ(spans.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(spans[static_cast<size_t>(i)].first, i * 2000);
  }
}

INSTANTIATE_TEST_SUITE_P(Contention, MutexFairness,
                         ::testing::Values(1, 2, 5, 16, 64));

}  // namespace
}  // namespace wiera::sim
