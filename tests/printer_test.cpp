// Round-trip tests for the policy pretty-printer: parse(print(doc)) must
// reproduce the same structure for every built-in paper policy and for
// fragments with every value kind.
#include <gtest/gtest.h>

#include "common/units.h"
#include "policy/builtin_policies.h"
#include "policy/eval.h"
#include "policy/parser.h"
#include "policy/printer.h"

namespace wiera::policy {
namespace {

// Structural equality proxy: the printer's output is canonical, so
// print(parse(print(doc))) == print(doc) iff the round trip is lossless.
void expect_round_trip(const PolicyDoc& doc) {
  const std::string once = to_source(doc);
  auto reparsed = parse_policy(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string() << "\n" << once;
  const std::string twice = to_source(*reparsed);
  EXPECT_EQ(once, twice);

  // Semantic invariants.
  EXPECT_EQ(doc.name, reparsed->name);
  EXPECT_EQ(doc.is_wiera, reparsed->is_wiera);
  EXPECT_EQ(doc.params.size(), reparsed->params.size());
  EXPECT_EQ(doc.tiers.size(), reparsed->tiers.size());
  EXPECT_EQ(doc.regions.size(), reparsed->regions.size());
  ASSERT_EQ(doc.events.size(), reparsed->events.size());
  EXPECT_TRUE(validate(*reparsed).ok()) << validate(*reparsed).to_string();

  // Triggers classify identically (binding any `t` parameter).
  std::map<std::string, Value> params;
  for (const auto& [_, name] : doc.params) {
    params[name] = Value::duration_of(sec(10));
  }
  for (size_t i = 0; i < doc.events.size(); ++i) {
    auto a = classify_trigger(*doc.events[i].trigger, params);
    auto b = classify_trigger(*reparsed->events[i].trigger, params);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->kind, b->kind);
      EXPECT_EQ(a->tier, b->tier);
      EXPECT_EQ(a->period.us(), b->period.us());
      EXPECT_EQ(a->cold_after.us(), b->cold_after.us());
      EXPECT_DOUBLE_EQ(a->fill_percent, b->fill_percent);
    }
  }
}

class BuiltinRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BuiltinRoundTrip, ParsePrintParseIsStable) {
  auto docs = builtin::all_parsed();
  expect_round_trip(docs[static_cast<size_t>(GetParam())]);
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, BuiltinRoundTrip,
                         ::testing::Range(0, 9));

TEST(PrinterTest, ValueKindsRender) {
  EXPECT_EQ(value_to_source(Value::number_of(42)), "42");
  EXPECT_EQ(value_to_source(Value::bool_of(true)), "True");
  EXPECT_EQ(value_to_source(Value::bool_of(false)), "False");
  EXPECT_EQ(value_to_source(Value::string_of("US-West")), "US-West");
  EXPECT_EQ(value_to_source(Value::duration_of(msec(800))), "800 ms");
  EXPECT_EQ(value_to_source(Value::duration_of(sec(30))), "30 seconds");
  EXPECT_EQ(value_to_source(Value::duration_of(hoursd(120))), "120 hours");
  EXPECT_EQ(value_to_source(Value::size_of(5 * GiB)), "5G");
  EXPECT_EQ(value_to_source(Value::size_of(10 * KiB)), "10K");
  EXPECT_EQ(value_to_source(Value::size_of(3 * TiB)), "3T");
  EXPECT_EQ(value_to_source(Value::percent_of(50)), "50%");
  EXPECT_EQ(value_to_source(Value::rate_of(40 * 1024)), "40KB/s");
  EXPECT_EQ(value_to_source(Value::rate_of(2 * 1024 * 1024)), "2MB/s");
}

TEST(PrinterTest, ValueKindsRoundTripThroughLexer) {
  // Each printed value must re-parse to the same Value.
  const Value values[] = {
      Value::duration_of(msec(800)), Value::duration_of(sec(30)),
      Value::duration_of(minutes(5)), Value::duration_of(hoursd(120)),
      Value::size_of(5 * GiB),        Value::size_of(512 * KiB),
      Value::percent_of(75),          Value::rate_of(100 * 1024),
  };
  for (const Value& v : values) {
    const std::string doc_src =
        "Tiera T() { tier1: {name: S3, size: 1G, x: " + value_to_source(v) +
        "}; }";
    auto doc = parse_policy(doc_src);
    ASSERT_TRUE(doc.ok()) << doc_src;
    const Value* parsed = doc->tiers[0].attr("x");
    ASSERT_NE(parsed, nullptr);
    EXPECT_EQ(parsed->kind, v.kind) << doc_src;
    EXPECT_EQ(value_to_source(*parsed), value_to_source(v));
  }
}

TEST(PrinterTest, NestedLogicalExpressionsKeepStructure) {
  auto doc = parse_policy(R"(
Wiera Nested() {
   event(threshold.type == put) : response {
      if((threshold.latency > 800 ms && threshold.period > 30 seconds)
         || threshold.latency > 5 seconds)
         change_policy(what:consistency, to:EventualConsistency);
   }
}
)");
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  expect_round_trip(*doc);
  // The re-parsed condition evaluates identically.
  auto reparsed = parse_policy(to_source(*doc));
  ASSERT_TRUE(reparsed.ok());
  MapContext ctx;
  ctx.set("threshold.latency", Value::duration_of(sec(6)));
  ctx.set("threshold.period", Value::duration_of(sec(1)));
  const auto& branch = reparsed->events[0].response[0].if_stmt().branches[0];
  auto result = evaluate_condition(*branch.condition, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);  // 6s > 5s arm of the ||
}

TEST(PrinterTest, FragmentsRender) {
  auto doc = parse_policy(builtin::persistent_instance());
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(to_source(doc->tiers[0]).find("Memcached"), std::string::npos);
  EXPECT_NE(to_source(doc->events[1]).find("tier2.filled == 50%"),
            std::string::npos);
  auto wiera_doc = parse_policy(builtin::multi_primaries_consistency());
  ASSERT_TRUE(wiera_doc.ok());
  const std::string region = to_source(wiera_doc->regions[0]);
  EXPECT_NE(region.find("Region1"), std::string::npos);
  EXPECT_NE(region.find("US-West"), std::string::npos);
  EXPECT_NE(region.find("LocalMemory"), std::string::npos);
}

}  // namespace
}  // namespace wiera::policy
