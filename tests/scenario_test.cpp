// Scenario suite (docs/SCENARIOS.md): seeded workload + operational-event
// plans run against a live four-region cluster (plus one spare node for
// live adds) while concurrent clients execute an oracle-recorded workload
// shaped by the engine's LoadModel. Acceptance is two-layered:
//   * sim::ConsistencyOracle — did the cluster ever lie? (eventual-mode
//     invariant + replica convergence over the final member set)
//   * sim::SloOracle — did the cluster hold its service level while the
//     scenario played out? (no failed ops, bounded shed rate, p99 bounds,
//     bounded availability gap through evacuations)
// Scenarios compose with random FaultPlans (an evacuation *while* a
// partition or crash is live) and every run folds its applied events into
// the determinism trace hash, so a failing run prints
// "SCENARIO-FAIL seed=... scenario=... fault=... trace=..." and
// scripts/scenario_sweep.sh can replay it exactly with
// `scenario_test --seed N --scenario NAME[:FAULT]`.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <initializer_list>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "obs/alerts.h"
#include "obs/telemetry.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "sim/attribution.h"
#include "sim/faults.h"
#include "sim/obs_pipeline.h"
#include "sim/oracle.h"
#include "sim/scenario.h"
#include "sim/slo.h"
#include "wiera/chaos.h"
#include "wiera/client.h"
#include "wiera/controller.h"
#include "wiera/scenario_host.h"

namespace wiera::geo {
namespace {

const char* const kStorageNodes[] = {"tiera-us-west", "tiera-us-east",
                                     "tiera-eu-west", "tiera-asia-east"};
// Spare capacity for kAddRegion: a registered Tiera server that is not a
// member until a scenario brings it up live.
const char* const kSpareNode = "tiera-spare";
const char* const kClientNodes[] = {"client-us-west", "client-eu-west",
                                    "client-asia-east"};
constexpr int kKeyCount = 6;

enum class ComposedFault {
  kNone,
  kPartition,
  kCrash,
  // Gray classes (docs/HEALTH.md): the peer stays alive but degrades.
  kStutter,
  kFlakyLink,
  kSlowNode,
};

const char* fault_name(ComposedFault fault) {
  switch (fault) {
    case ComposedFault::kNone:
      return "none";
    case ComposedFault::kPartition:
      return "partition";
    case ComposedFault::kCrash:
      return "crash";
    case ComposedFault::kStutter:
      return "stutter";
    case ComposedFault::kFlakyLink:
      return "flakylink";
    case ComposedFault::kSlowNode:
      return "slownode";
  }
  return "?";
}

bool is_gray_fault(ComposedFault fault) {
  return fault == ComposedFault::kStutter ||
         fault == ComposedFault::kFlakyLink ||
         fault == ComposedFault::kSlowNode;
}

// The gray builtins (grayprimary, graylink) arm health detection and carry
// the p99-inflation contract clause.
bool is_gray_scenario(const std::string& name) {
  return name.rfind("gray", 0) == 0;
}

// ChaosCluster's deployment plus the knobs scenario runs rely on: a spare
// storage server (live-add target), a ping deadline so the serial heartbeat
// loop keeps detecting failures while a composed fault blackholes a peer,
// and the same leased-lock / serve-lease configuration as the chaos suite.
struct ScenarioCluster {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  WieraController controller;
  std::vector<std::unique_ptr<TieraServer>> servers;

  explicit ScenarioCluster(
      uint64_t seed,
      std::function<void(WieraController::Config&)> config_tweak = nullptr)
      : sim(seed),
        network(sim, make_topology()),
        controller(sim, network, registry,
                   controller_config(std::move(config_tweak))) {
    for (const char* node : kStorageNodes) {
      servers.push_back(
          std::make_unique<TieraServer>(sim, network, registry, node));
      controller.register_server(servers.back().get());
    }
    servers.push_back(
        std::make_unique<TieraServer>(sim, network, registry, kSpareNode));
    controller.register_server(servers.back().get());
  }

  static WieraController::Config controller_config(
      std::function<void(WieraController::Config&)> tweak = nullptr) {
    WieraController::Config config;
    config.node = "wiera-controller";
    config.heartbeat_interval = sec(1);
    config.lock_lease = sec(20);
    config.serve_lease = msec(1500);
    config.ping_deadline = msec(800);
    if (tweak) tweak(config);
    return config;
  }

  static net::Topology make_topology() {
    net::Topology topo = net::Topology::paper_default();
    topo.set_jitter_fraction(0.0);
    topo.add_node("wiera-controller", "aws-us-east");
    topo.add_node("tiera-us-west", "aws-us-west");
    topo.add_node("tiera-us-east", "aws-us-east");
    topo.add_node("tiera-eu-west", "aws-eu-west");
    topo.add_node("tiera-asia-east", "aws-asia-east");
    topo.add_node(kSpareNode, "aws-us-east");
    topo.add_node("client-us-west", "aws-us-west");
    topo.add_node("client-eu-west", "aws-eu-west");
    topo.add_node("client-asia-east", "aws-asia-east");
    return topo;
  }

  WieraController::StartOptions options_for(
      ConsistencyMode mode,
      std::function<void(WieraPeer::Config&)> peer_tweak = {}) {
    WieraController::StartOptions options;
    auto doc = policy::parse_policy(
        mode == ConsistencyMode::kEventual
            ? policy::builtin::eventual_consistency()
            : policy::builtin::primary_backup_consistency());
    EXPECT_TRUE(doc.ok()) << doc.status().to_string();
    options.global = std::move(doc).value();
    options.local_params["t"] = policy::Value::duration_of(sec(10));
    options.customize = [peer_tweak =
                             std::move(peer_tweak)](WieraPeer::Config& config) {
      config.local.tier_tweak = [](const std::string&,
                                   store::TierSpec& spec) {
        spec.jitter_fraction = 0;
      };
      config.replicate_retries = 8;
      config.replicate_backoff = msec(50);
      if (peer_tweak) peer_tweak(config);
    };
    return options;
  }
};

sim::ScenarioPlan::BuiltinOptions builtin_options() {
  sim::ScenarioPlan::BuiltinOptions options;
  for (const char* node : kStorageNodes) options.nodes.push_back(node);
  options.spare_nodes.push_back(kSpareNode);
  for (const char* node : kClientNodes) options.regions.push_back(node);
  options.key_count = kKeyCount;
  return options;
}

// A composed fault never targets the node a drain/add event operates on:
// the point is an evacuation riding out a fault *elsewhere*, not a fault
// plan and a scenario plan fighting over one node's lifecycle.
sim::FaultPlan composed_plan(ComposedFault fault, uint64_t seed,
                             const sim::ScenarioPlan& scenario) {
  sim::FaultPlan plan;
  if (fault == ComposedFault::kNone) return plan;
  std::set<std::string> excluded;
  for (const auto& e : scenario.events()) {
    if (e.kind == sim::ScenarioEvent::Kind::kDrainRegion ||
        e.kind == sim::ScenarioEvent::Kind::kAddRegion) {
      excluded.insert(e.target);
    }
  }
  sim::FaultPlan::RandomOptions options;
  for (const char* node : kStorageNodes) {
    if (excluded.count(node) == 0) options.nodes.push_back(node);
  }
  options.earliest = TimePoint::origin() + sec(3);
  options.latest = TimePoint::origin() + sec(18);
  if (is_gray_fault(fault)) {
    // Gray windows land inside the scenario's SLO window (the gray
    // builtins' load shapes start after a ~8s quiet head), so the
    // degradation is charged to the in-window side of the p99-inflation
    // clause, never to its out-of-window baseline.
    options.earliest = TimePoint::origin() + sec(10);
    options.latest = TimePoint::origin() + sec(24);
  }
  switch (fault) {
    case ComposedFault::kPartition:
      options.partitions = 1;
      break;
    case ComposedFault::kStutter:
      options.stutters = 1;
      break;
    case ComposedFault::kFlakyLink:
      options.flaky_links = 1;
      break;
    case ComposedFault::kSlowNode:
      options.slow_nodes = 1;
      break;
    default:
      options.crashes = 1;
      break;
  }
  return sim::FaultPlan::random(seed ^ 0x5ce9a210u, options);
}

// The window availability/shed checks run over: the plan's own span, padded
// to at least 10s (a rolling restart's window() is a single instant) and
// clamped to the workload's 30s so the post-workload quiet tail never reads
// as an availability gap.
std::pair<TimePoint, TimePoint> slo_window(const sim::ScenarioPlan& plan) {
  auto w = plan.window();
  const TimePoint cap = TimePoint::origin() + sec(30);
  TimePoint end = w.second;
  if (end < w.first + sec(10)) end = w.first + sec(10);
  if (cap < end) end = cap;
  TimePoint start = w.first;
  if (end < start) start = end;
  return {start, end};
}

bool has_operational_events(const std::string& name) {
  return name == "evacuation" || name == "addregion" || name == "rolling";
}

// What each scenario promises its clients. Every run must end each op
// kOk/kNotFound and never hand back a corrupt payload; latency bounds are
// on the served tail (histograms record successes only) with composed-fault
// headroom for attempt-timeout failovers; operational scenarios additionally
// bound the gap between successful completions — "zero availability gap"
// at the 8s grain of this workload's cadence.
sim::SloContract contract_for(const std::string& name, ComposedFault fault) {
  sim::SloContract contract;
  contract.scenario = name;
  contract.no_failed_ops = true;
  contract.no_corrupt_reads = true;
  contract.max_shed_fraction = name == "flashcrowd" ? 0.3 : 0.05;
  const Duration p99 = fault == ComposedFault::kNone ? sec(2) : sec(3);
  contract.max_put_p99 = p99;
  contract.max_get_p99 = p99;
  if (has_operational_events(name)) contract.max_availability_gap = sec(8);
  if (is_gray_scenario(name)) {
    // Gray acceptance (docs/HEALTH.md): one degraded-but-alive peer or link
    // may not inflate the in-window served GET tail beyond this factor of
    // the quiet out-of-window baseline. With ~60 in-window GETs the
    // nearest-rank p99 is the max, so the few slow ops a client serves
    // while the tracker is still converging set the in-window side; the
    // worst health-armed seed measures 9.1x, hence 12.0 here. The tighter
    // discrimination bound lives in the DisabledHealthDetection mutation
    // test, whose controlled fault separates health-on (1.0x) from
    // health-off (>12x) around 6.0.
    contract.max_get_p99_inflation = 12.0;
  }
  return contract;
}

std::string hex_trace(uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

bool dump_telemetry_enabled() {
  const char* env = std::getenv("WIERA_DUMP_TELEMETRY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Time-series capture (docs/METRICS_PIPELINE.md): arms the ObsPipeline
// scraper and per-peer hot-key sketches for the run. Off by default — an
// armed pipeline adds timer events, so replay hashes from a timeseries run
// only compare against other timeseries runs.
bool dump_timeseries_enabled() {
  const char* env = std::getenv("WIERA_DUMP_TIMESERIES");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void dump_telemetry(sim::Simulation& sim, std::set<uint64_t> traces) {
  std::printf("TELEMETRY-SNAPSHOT\n%s",
              sim.telemetry().registry().render_text().c_str());
  traces.erase(0);
  for (uint64_t id : traces) {
    obs::TraceView view(sim.telemetry().tracer(), id);
    if (view.empty()) continue;
    std::printf("TELEMETRY-TRACE trace=%s\n%s", hex_trace(id).c_str(),
                view.render().c_str());
  }
}

struct ScenarioRunResult {
  std::vector<sim::SloViolation> slo_violations;
  std::vector<sim::OracleViolation> violations;
  std::vector<sim::OracleViolation> convergence_violations;
  uint64_t trace_hash = 0;
  int64_t ops = 0;
  int64_t ok = 0;
  int64_t not_found = 0;
  int64_t shed = 0;
  int64_t failed = 0;
  int64_t plan_events = 0;
  int64_t events_applied = 0;
  int64_t fault_events = 0;
  int64_t drains = 0;
  int64_t added = 0;
  int64_t restarts = 0;
  int64_t host_failures = 0;  // operational events that errored out
  int64_t attempt_timeouts = 0;
  // Health lifecycle counters (0 unless the run armed the tracker).
  int64_t probation_entries = 0;
  int64_t probation_exits = 0;
  std::string timeline;
  // Rendered ATTRIBUTION-REPORT block; empty when no clause tripped.
  std::string attribution;
};

// One client: put/get rounds whose key choice, tenant class and cadence all
// come from the engine's LoadModel, so scenario load shapes actually steer
// the traffic. Class-B tenant ops are read-only. Every outcome lands in
// both oracles.
sim::Task<void> scenario_workload(sim::Simulation& sim,
                                  sim::ScenarioEngine& engine,
                                  sim::ConsistencyOracle& oracle,
                                  sim::SloOracle& slo, WieraClient& client,
                                  std::string region, uint64_t seed,
                                  int index, TimePoint end) {
  Rng rng(seed * 7919 + static_cast<uint64_t>(index) * 131 + 1);
  co_await sim.delay(msec(250) * static_cast<double>(index + 1));
  int round = 0;
  while (sim.now() < end) {
    const int key_index = engine.load().pick_key(rng, sim.now());
    const std::string key = "k" + std::to_string(key_index);
    if (engine.load().pick_tenant(rng) == 0) {
      const std::string value =
          "c" + std::to_string(index) + "r" + std::to_string(round);
      const TimePoint start = sim.now();
      const int64_t put_op = oracle.begin_put(client.id(), key, value, start);
      auto put = co_await client.put(key, Blob(value));
      oracle.set_op_trace(put_op, client.last_trace_id());
      oracle.end_put(put_op, sim.now(), put.ok(),
                     put.ok() ? put->version : 0);
      slo.record_put(client.id(), key, value, start, sim.now(),
                     put.ok() ? StatusCode::kOk : put.status().code(),
                     client.last_trace_id());
      co_await sim.delay(msec(200) + msec(30) * static_cast<double>(index));
    }

    const TimePoint start = sim.now();
    const int64_t get_op = oracle.begin_get(client.id(), key, start);
    auto got = co_await client.get(key);
    oracle.set_op_trace(get_op, client.last_trace_id());
    StatusCode code = StatusCode::kOk;
    std::string read_value;
    if (got.ok()) {
      read_value = got->value.to_string();
      oracle.end_get(get_op, sim.now(), true, read_value, got->version,
                     got->served_by);
    } else if (got.status().code() == StatusCode::kNotFound) {
      code = StatusCode::kNotFound;
      oracle.end_get(get_op, sim.now(), true, "", 0, "");
    } else {
      code = got.status().code();
      oracle.end_get(get_op, sim.now(), false, "", 0, "");
    }
    slo.record_get(client.id(), key, read_value, start, sim.now(), code,
                   client.last_trace_id());

    round++;
    // The diurnal rate multiplier stretches/compresses the inter-round gap
    // (clamped >= 0.2 by the model, so a trough never stalls the driver).
    const double mult = engine.load().rate_multiplier(region, sim.now());
    const double base = static_cast<double>(msec(600).us());
    co_await sim.delay(usec(static_cast<int64_t>(base / mult)));
  }
}

// Final replica states over the *current* member set — after an evacuation
// the retired peer no longer counts, after a live add the new peer must
// agree too.
sim::Task<void> harvest_finals(WieraController& controller,
                               sim::ConsistencyOracle& oracle, bool& done) {
  auto members = controller.get_instances("w1");
  if (members.ok()) {
    for (const std::string& node : *members) {
      WieraPeer* peer = controller.peer(node);
      if (peer == nullptr) continue;
      for (int k = 0; k < kKeyCount; ++k) {
        const std::string key = "k" + std::to_string(k);
        const metadb::ObjectMeta* obj = peer->local().meta().find(key);
        const metadb::VersionMeta* vm =
            obj == nullptr ? nullptr : obj->latest_committed();
        if (vm == nullptr) {
          oracle.record_replica_value(node, key, 0, TimePoint(), "", "");
          continue;
        }
        const int64_t version = vm->version;
        const TimePoint last_modified = vm->last_modified;
        const std::string origin = vm->origin;
        auto value = co_await peer->local().get_version(key, version);
        oracle.record_replica_value(node, key, version, last_modified, origin,
                                    value.ok() ? value->value.to_string()
                                               : "");
      }
    }
  }
  done = true;
}

ScenarioRunResult run_scenario(const std::string& name, ComposedFault fault,
                               uint64_t seed, bool telemetry_on = true) {
  // Gray runs (gray fault class or gray builtin) arm health detection;
  // every other run keeps the seed controller config, so pre-existing
  // scenario trace hashes stay byte-identical.
  std::function<void(WieraController::Config&)> controller_tweak;
  if (is_gray_fault(fault) || is_gray_scenario(name)) {
    controller_tweak = [](WieraController::Config& config) {
      config.health.enabled = true;
    };
  }
  ScenarioCluster cluster(seed, std::move(controller_tweak));
  if (!telemetry_on) cluster.sim.telemetry().set_enabled(false);
  // Timeseries runs additionally arm the per-peer hot-key sketches; default
  // runs keep the seed peer config so telemetry dumps stay byte-identical.
  std::function<void(WieraPeer::Config&)> peer_tweak;
  if (dump_timeseries_enabled()) {
    peer_tweak = [](WieraPeer::Config& config) {
      config.key_stats.enabled = true;
    };
  }
  auto peers = cluster.controller.start_instances(
      "w1",
      cluster.options_for(ConsistencyMode::kEventual, std::move(peer_tweak)));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  auto plan = sim::ScenarioPlan::builtin(name, seed, builtin_options());
  EXPECT_TRUE(plan.ok()) << plan.status().to_string();
  if (!plan.ok()) return {};
  const auto window = slo_window(*plan);
  const int64_t plan_events = static_cast<int64_t>(plan->events().size());

  ChaosHost chaos_host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, chaos_host);
  injector.arm(composed_plan(fault, seed, *plan));

  ScenarioHost scenario_host(cluster.sim, cluster.controller, "w1");
  sim::ScenarioEngine engine(cluster.sim, scenario_host);
  engine.load().set_key_count(kKeyCount);
  engine.arm(std::move(plan).value());

  // Metrics pipeline (docs/METRICS_PIPELINE.md): unarmed by default — it
  // spawns nothing and the schedule stays byte-identical. Timeseries runs
  // scrape every 100ms until the workload horizon.
  sim::ObsPipeline pipeline(cluster.sim);
  if (dump_timeseries_enabled()) {
    sim::ObsPipeline::Config obs_config;
    obs_config.interval = msec(100);
    obs_config.until = TimePoint::origin() + sec(35);
    pipeline.arm(obs_config);
  }

  WieraClient::Config client_config;
  client_config.op_deadline = sec(3);
  client_config.failover_attempt_timeout = msec(400);
  client_config.retry_budget_per_sec = 5;
  client_config.retry_budget_capacity = 10;
  // Safe to wire unconditionally: a disabled tracker records nothing and
  // ranks every peer neutral (verified by the determinism replays).
  client_config.health = &cluster.controller.health();

  sim::ConsistencyOracle oracle;
  sim::SloOracle slo;
  slo.set_window(window.first, window.second);
  std::vector<std::unique_ptr<WieraClient>> clients;
  const TimePoint workload_end = TimePoint::origin() + sec(30);
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<WieraClient>(
        cluster.sim, cluster.network, cluster.registry,
        "app-" + std::to_string(i), kClientNodes[i], *peers, client_config));
    cluster.sim.spawn(scenario_workload(cluster.sim, engine, oracle, slo,
                                        *clients.back(), kClientNodes[i],
                                        seed, i, workload_end));
  }

  // Workload, scenario and fault windows are over by ~35s; 45s leaves room
  // for recovery/catch-up to settle before finals are harvested.
  cluster.sim.run_until(TimePoint(sec(45).us()));
  bool harvested = false;
  cluster.sim.spawn(harvest_finals(cluster.controller, oracle, harvested));
  cluster.sim.run_until(TimePoint(sec(50).us()));
  EXPECT_TRUE(harvested);

  ScenarioRunResult result;
  result.slo_violations =
      slo.check(contract_for(name, fault), cluster.sim.telemetry().registry(),
                {"app-0", "app-1", "app-2"});
  result.violations = oracle.check(sim::CheckMode::kEventual);
  result.convergence_violations = oracle.check_convergence();
  result.trace_hash = cluster.sim.checker().trace_hash();
  result.ops = slo.ops();
  result.ok = slo.ok();
  result.not_found = slo.not_found();
  result.shed = slo.shed();
  result.failed = slo.failed();
  result.plan_events = plan_events;
  result.events_applied = engine.events_applied();
  result.fault_events = injector.events_applied();
  result.drains = cluster.controller.drains_completed();
  result.added = cluster.controller.peers_added();
  result.restarts = cluster.controller.rolling_restarts_completed();
  result.host_failures = scenario_host.failed_operations();
  result.probation_entries = cluster.controller.health().probation_entries();
  result.probation_exits = cluster.controller.health().probation_exits();
  for (const auto& client : clients) {
    result.attempt_timeouts += client->attempt_timeouts();
  }
  result.timeline = engine.render_timeline();

  // Failure attribution (docs/METRICS_PIPELINE.md): any tripped clause gets
  // one report correlating the violating window with the fault/scenario
  // timelines, alert firings, per-peer hot keys and the worst spans.
  if (!result.slo_violations.empty() || !result.violations.empty() ||
      !result.convergence_violations.empty()) {
    sim::AttributionReport report;
    report.set_context("scenario", name + ":" + fault_name(fault), seed,
                       result.trace_hash);
    report.set_window(window.first, window.second);
    report.add_violations(result.slo_violations);
    for (const auto& v : result.violations) {
      report.add_violation("consistency", v.key + ": " + v.message,
                           window.second, v.trace_id);
    }
    for (const auto& v : result.convergence_violations) {
      report.add_violation("convergence", v.key + ": " + v.message,
                           window.second, v.trace_id);
    }
    report.set_fault_timeline(injector.timeline());
    report.set_scenario_timeline(engine.timeline());
    report.set_alerts(pipeline.alerts());
    const TimePoint now = cluster.sim.now();
    for (const std::string& node : *peers) {
      const WieraPeer* peer = cluster.controller.peer(node);
      if (peer != nullptr) report.add_key_stats(node, peer->key_stats(), now);
    }
    report.set_tracer(cluster.sim.telemetry().tracer());
    result.attribution = report.render_text();
    std::printf("%s", result.attribution.c_str());
  }

  if (dump_telemetry_enabled()) {
    std::set<uint64_t> traces{oracle.sample_put_trace()};
    for (const auto& v : result.slo_violations) traces.insert(v.trace_id);
    for (const auto& v : result.violations) traces.insert(v.trace_id);
    std::printf("SCENARIO-TIMELINE\n%s", result.timeline.c_str());
    dump_telemetry(cluster.sim, std::move(traces));
  }
  if (dump_timeseries_enabled() && pipeline.sampler() != nullptr) {
    std::printf("TIMESERIES-SNAPSHOT\n%s\n",
                pipeline.sampler()->render_json().c_str());
    const TimePoint now = cluster.sim.now();
    for (const std::string& node : *peers) {
      const WieraPeer* peer = cluster.controller.peer(node);
      if (peer == nullptr || peer->key_stats().total_accesses() == 0) continue;
      std::printf("KEYSTATS instance=%s %s\n", node.c_str(),
                  peer->key_stats().render_json(now).c_str());
    }
  }
  return result;
}

int seed_count() {
  const char* env = std::getenv("WIERA_SCENARIO_SEED_COUNT");
  if (env == nullptr) return 20;
  int n = std::atoi(env);
  return n > 0 ? n : 20;
}

// CI greps these counters out of a failing sweep (scripts/scenario_sweep.sh).
void print_scenario_stats(const std::string& name, ComposedFault fault,
                          uint64_t seed, const ScenarioRunResult& r) {
  std::printf(
      "SCENARIO-STATS seed=%llu scenario=%s fault=%s ops=%lld ok=%lld "
      "notfound=%lld shed=%lld failed=%lld events=%lld fault_events=%lld "
      "drains=%lld added=%lld restarts=%lld attempt_timeouts=%lld trace=%s\n",
      static_cast<unsigned long long>(seed), name.c_str(), fault_name(fault),
      static_cast<long long>(r.ops), static_cast<long long>(r.ok),
      static_cast<long long>(r.not_found), static_cast<long long>(r.shed),
      static_cast<long long>(r.failed),
      static_cast<long long>(r.events_applied),
      static_cast<long long>(r.fault_events),
      static_cast<long long>(r.drains), static_cast<long long>(r.added),
      static_cast<long long>(r.restarts),
      static_cast<long long>(r.attempt_timeouts),
      hex_trace(r.trace_hash).c_str());
}

// Companion line for gray runs: the health lifecycle counters CI greps out
// of a failing gray sweep (scripts/gray_sweep.sh, docs/HEALTH.md).
void print_health_stats(const std::string& name, ComposedFault fault,
                        uint64_t seed, const ScenarioRunResult& r) {
  std::printf(
      "HEALTH-STATS seed=%llu scenario=%s fault=%s probation_entries=%lld "
      "probation_exits=%lld trace=%s\n",
      static_cast<unsigned long long>(seed), name.c_str(), fault_name(fault),
      static_cast<long long>(r.probation_entries),
      static_cast<long long>(r.probation_exits),
      hex_trace(r.trace_hash).c_str());
}

void check_run(const std::string& name, ComposedFault fault, uint64_t seed,
               const ScenarioRunResult& r) {
  const std::string tag = "SCENARIO-FAIL seed=" + std::to_string(seed) +
                          " scenario=" + name +
                          " fault=" + fault_name(fault) +
                          " trace=" + hex_trace(r.trace_hash);
  EXPECT_GT(r.ops, 0) << tag << " no op ever ran";
  EXPECT_GT(r.ok, 0) << tag << " no op ever completed";
  EXPECT_EQ(r.events_applied, r.plan_events)
      << tag << " scenario driver dropped events";
  if (!r.slo_violations.empty()) {
    ADD_FAILURE() << tag << "\n"
                  << sim::SloOracle::describe(r.slo_violations)
                  << r.timeline << r.attribution;
  }
  if (!r.violations.empty()) {
    ADD_FAILURE() << tag << " (consistency)\n"
                  << sim::ConsistencyOracle::describe(r.violations)
                  << r.timeline << r.attribution;
  }
  if (!r.convergence_violations.empty()) {
    ADD_FAILURE() << tag << " (convergence)\n"
                  << sim::ConsistencyOracle::describe(
                         r.convergence_violations)
                  << r.timeline << r.attribution;
  }
  if (fault == ComposedFault::kNone) {
    // Fault-free runs must complete their operational events; composed runs
    // may legitimately abort a drain at its deadline (the peer is restored
    // to membership) — there the SLO contract is the acceptance bar.
    EXPECT_EQ(r.host_failures, 0) << tag << " operational event failed";
    if (name == "evacuation") {
      EXPECT_EQ(r.drains, 1) << tag;
    }
    if (name == "addregion") {
      EXPECT_EQ(r.drains, 1) << tag;
      EXPECT_EQ(r.added, 1) << tag;
    }
    if (name == "rolling") {
      EXPECT_EQ(r.restarts, 1) << tag;
    }
  }
}

void sweep(const std::string& name,
           std::initializer_list<ComposedFault> faults) {
  const int seeds = seed_count();
  for (ComposedFault fault : faults) {
    int64_t probation_entries = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      ScenarioRunResult r =
          run_scenario(name, fault, static_cast<uint64_t>(seed));
      print_scenario_stats(name, fault, static_cast<uint64_t>(seed), r);
      if (is_gray_fault(fault) || is_gray_scenario(name)) {
        print_health_stats(name, fault, static_cast<uint64_t>(seed), r);
      }
      probation_entries += r.probation_entries;
      check_run(name, fault, static_cast<uint64_t>(seed), r);
    }
    // A sustained slowdown must actually register with the detector
    // somewhere across the sweep; the milder gray classes may stay under
    // the probation thresholds on any given seed.
    if (fault == ComposedFault::kSlowNode) {
      EXPECT_GT(probation_entries, 0)
          << name << ": no slow-node window ever entered probation";
    }
  }
}

// ------------------------------------------------------------- seed sweeps
//
// Every built-in holds its SLO contract fault-free AND composed with at
// least one fault class; the evacuation scenario — the acceptance bar —
// composes with both partitions and crashes.

TEST(ScenarioSweepTest, DiurnalLoadHoldsSloAcrossSeeds) {
  sweep("diurnal", {ComposedFault::kNone, ComposedFault::kPartition});
}

TEST(ScenarioSweepTest, ZipfShiftHoldsSloAcrossSeeds) {
  sweep("zipfshift", {ComposedFault::kNone, ComposedFault::kCrash});
}

TEST(ScenarioSweepTest, FlashCrowdHoldsSloAcrossSeeds) {
  sweep("flashcrowd", {ComposedFault::kNone, ComposedFault::kPartition});
}

TEST(ScenarioSweepTest, TenantMixHoldsSloAcrossSeeds) {
  sweep("tenantmix", {ComposedFault::kNone, ComposedFault::kCrash});
}

TEST(ScenarioSweepTest, EvacuationHoldsSloUnderPartitionAndCrash) {
  sweep("evacuation", {ComposedFault::kNone, ComposedFault::kPartition,
                       ComposedFault::kCrash});
}

TEST(ScenarioSweepTest, AddRegionHoldsSloAcrossSeeds) {
  sweep("addregion", {ComposedFault::kNone, ComposedFault::kPartition});
}

TEST(ScenarioSweepTest, RollingRestartHoldsSloAcrossSeeds) {
  sweep("rolling", {ComposedFault::kNone, ComposedFault::kCrash});
}

// Gray-failure scenarios (docs/HEALTH.md): health detection is armed, the
// contract adds the p99-inflation clause, and the degraded peer/link must
// never cost consistency, convergence or the served tail.

TEST(ScenarioSweepTest, GrayPrimaryUnderDiurnalHoldsTheInflationBound) {
  sweep("grayprimary", {ComposedFault::kNone, ComposedFault::kSlowNode,
                        ComposedFault::kStutter});
}

TEST(ScenarioSweepTest, FlakyLinkDuringFlashCrowdStaysConvergent) {
  sweep("graylink", {ComposedFault::kNone, ComposedFault::kFlakyLink});
}

// ------------------------------------------------------------ determinism

TEST(ScenarioDeterminismTest, EveryBuiltinReplaysBitIdentical) {
  for (const std::string& name : sim::ScenarioPlan::builtin_names()) {
    ScenarioRunResult a = run_scenario(name, ComposedFault::kNone, 5);
    ScenarioRunResult b = run_scenario(name, ComposedFault::kNone, 5);
    EXPECT_EQ(a.trace_hash, b.trace_hash) << name;
    EXPECT_EQ(a.ops, b.ops) << name;
    EXPECT_EQ(a.ok, b.ok) << name;
    EXPECT_EQ(a.events_applied, b.events_applied) << name;
    ScenarioRunResult c = run_scenario(name, ComposedFault::kNone, 6);
    EXPECT_NE(a.trace_hash, c.trace_hash) << name;
  }
}

TEST(ScenarioDeterminismTest, TelemetryOffLeavesScenarioHashIdentical) {
  ScenarioRunResult on = run_scenario("evacuation", ComposedFault::kPartition,
                                      /*seed=*/7);
  ScenarioRunResult off = run_scenario("evacuation", ComposedFault::kPartition,
                                       /*seed=*/7, /*telemetry_on=*/false);
  EXPECT_EQ(on.trace_hash, off.trace_hash);
  EXPECT_EQ(on.ops, off.ops);
  EXPECT_EQ(on.ok, off.ok);
  EXPECT_EQ(on.drains, off.drains);
}

// ------------------------------------------------------------ plan basics

TEST(ScenarioPlanTest, BuiltinIsAFunctionOfNameAndSeed) {
  const auto options = builtin_options();
  for (const std::string& name : sim::ScenarioPlan::builtin_names()) {
    auto a = sim::ScenarioPlan::builtin(name, 42, options);
    auto b = sim::ScenarioPlan::builtin(name, 42, options);
    ASSERT_TRUE(a.ok()) << name;
    ASSERT_TRUE(b.ok()) << name;
    EXPECT_FALSE(a->empty()) << name;
    EXPECT_EQ(a->describe(), b->describe()) << name;
  }
  auto x = sim::ScenarioPlan::builtin("evacuation", 42, options);
  auto y = sim::ScenarioPlan::builtin("evacuation", 43, options);
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  EXPECT_NE(x->describe(), y->describe());
  EXPECT_FALSE(sim::ScenarioPlan::builtin("no-such", 1, options).ok());
}

TEST(ScenarioPlanTest, EventHashesAreStableAndDistinct) {
  sim::ScenarioEvent a;
  a.kind = sim::ScenarioEvent::Kind::kDrainRegion;
  a.target = "tiera-us-west";
  a.at = TimePoint::origin() + sec(4);
  a.until = TimePoint::origin() + sec(24);
  sim::ScenarioEvent b = a;
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), 0u);
  b.target = "tiera-eu-west";
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.kind = sim::ScenarioEvent::Kind::kAddRegion;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(ScenarioPlanTest, LoadModelShapesTraffic) {
  sim::LoadModel model;
  model.set_key_count(10);
  Rng rng(1);

  // Flash crowd with boost 1.0: every in-window pick lands in [2,3];
  // outside the window picks spread back out.
  sim::ScenarioEvent crowd;
  crowd.kind = sim::ScenarioEvent::Kind::kFlashCrowd;
  crowd.at = TimePoint::origin();
  crowd.until = TimePoint::origin() + sec(10);
  crowd.hot_lo = 2;
  crowd.hot_hi = 3;
  crowd.boost = 1.0;
  model.apply(crowd);
  for (int i = 0; i < 64; ++i) {
    const int key = model.pick_key(rng, TimePoint::origin() + sec(5));
    EXPECT_GE(key, 2);
    EXPECT_LE(key, 3);
  }
  bool outside = false;
  for (int i = 0; i < 256 && !outside; ++i) {
    const int key = model.pick_key(rng, TimePoint::origin() + sec(15));
    outside = key < 2 || key > 3;
  }
  EXPECT_TRUE(outside) << "crowd window leaked past its end";

  // Diurnal: multiplier peaks at 1 + amplitude a quarter period in, only
  // for the shaped region.
  sim::ScenarioEvent diurnal;
  diurnal.kind = sim::ScenarioEvent::Kind::kDiurnalLoad;
  diurnal.target = "client-us-west";
  diurnal.at = TimePoint::origin();
  diurnal.until = TimePoint::origin() + sec(20);
  diurnal.amplitude = 0.5;
  diurnal.period = sec(8);
  model.apply(diurnal);
  EXPECT_NEAR(
      model.rate_multiplier("client-us-west", TimePoint::origin() + sec(2)),
      1.5, 1e-6);
  EXPECT_NEAR(
      model.rate_multiplier("client-eu-west", TimePoint::origin() + sec(2)),
      1.0, 1e-6);

  // Zipf shift skews picks toward low indices; tenant mix 1.0 makes every
  // op class B.
  sim::ScenarioEvent zipf;
  zipf.kind = sim::ScenarioEvent::Kind::kZipfShift;
  zipf.exponent = 1.3;
  model.apply(zipf);
  int low = 0, high = 0;
  for (int i = 0; i < 500; ++i) {
    const int key = model.pick_key(rng, TimePoint::origin() + sec(15));
    if (key == 0) low++;
    if (key == 9) high++;
  }
  EXPECT_GT(low, high);

  sim::ScenarioEvent mix;
  mix.kind = sim::ScenarioEvent::Kind::kTenantMix;
  mix.mix_fraction = 1.0;
  model.apply(mix);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(model.pick_tenant(rng), 1);
}

// -------------------------------------------------- drain hand-off mutation
//
// The SloOracle must actually catch a broken drain: with the hand-off
// disabled (Config::drain_handoff=false) a drained peer detaches with its
// replication queue unflushed, so the client's acked writes exist nowhere —
// the next read comes back empty and the session-reads clause fires. The
// control run (hand-off on) is clean under the identical schedule: the
// drain's own flush pushes the queue even though the periodic flusher
// (stretched to 10s here) never ran.

sim::Task<void> mutation_workload(sim::Simulation& sim, sim::SloOracle& slo,
                                  WieraClient& client) {
  for (int i = 1; i <= 3; ++i) {
    co_await sim.at(TimePoint::origin() + msec(1000) * static_cast<double>(i));
    const std::string value = "v" + std::to_string(i);
    const TimePoint start = sim.now();
    auto put = co_await client.put("mut-0", Blob(value));
    slo.record_put(client.id(), "mut-0", value, start, sim.now(),
                   put.ok() ? StatusCode::kOk : put.status().code(),
                   client.last_trace_id());
    EXPECT_TRUE(put.ok()) << put.status().to_string();
  }
  co_await sim.at(TimePoint::origin() + sec(8));
  const TimePoint start = sim.now();
  auto got = co_await client.get("mut-0");
  StatusCode code = StatusCode::kOk;
  if (!got.ok()) code = got.status().code();
  slo.record_get(client.id(), "mut-0",
                 got.ok() ? got->value.to_string() : "", start, sim.now(),
                 code, client.last_trace_id());
}

struct MutationResult {
  std::vector<sim::SloViolation> violations;
  int64_t drains = 0;
  std::string timeline;
};

MutationResult run_drain_mutation(bool handoff) {
  ScenarioCluster cluster(/*seed=*/11,
                          [handoff](WieraController::Config& config) {
                            config.drain_handoff = handoff;
                          });
  auto options = cluster.options_for(ConsistencyMode::kEventual);
  options.queue_flush_interval = sec(10);
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  ScenarioHost host(cluster.sim, cluster.controller, "w1");
  sim::ScenarioEngine engine(cluster.sim, host);
  sim::ScenarioPlan plan;
  plan.drain_region("tiera-us-west", TimePoint::origin() + sec(4),
                    TimePoint::origin() + sec(24));
  engine.arm(std::move(plan));

  WieraClient::Config client_config;
  client_config.op_deadline = sec(3);
  client_config.retry_budget_per_sec = 5;
  client_config.retry_budget_capacity = 10;
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app-0",
                     "client-us-west", *peers, client_config);
  EXPECT_EQ(client.closest_peer(), "tiera-us-west");

  sim::SloOracle slo;
  slo.set_window(TimePoint::origin() + sec(1), TimePoint::origin() + sec(10));
  cluster.sim.spawn(mutation_workload(cluster.sim, slo, client));
  cluster.sim.run_until(TimePoint(sec(12).us()));

  sim::SloContract contract;
  contract.scenario = "drain-mutation";
  contract.no_failed_ops = true;
  contract.session_reads = true;
  MutationResult result;
  result.violations =
      slo.check(contract, cluster.sim.telemetry().registry(), {"app-0"});
  result.drains = cluster.controller.drains_completed();
  result.timeline = engine.render_timeline();
  return result;
}

TEST(ScenarioMutationTest, DisabledDrainHandoffTripsTheSessionReadsClause) {
  MutationResult mutated = run_drain_mutation(/*handoff=*/false);
  EXPECT_EQ(mutated.drains, 1);
  bool session_fired = false;
  for (const auto& v : mutated.violations) {
    if (v.check == "session-reads") session_fired = true;
  }
  EXPECT_TRUE(session_fired)
      << "hand-off disabled but the SLO oracle saw nothing\n"
      << sim::SloOracle::describe(mutated.violations) << mutated.timeline;

  MutationResult control = run_drain_mutation(/*handoff=*/true);
  EXPECT_EQ(control.drains, 1);
  EXPECT_TRUE(control.violations.empty())
      << sim::SloOracle::describe(control.violations) << control.timeline;
}

// ------------------------------------------- health detection mutation
//
// The p99-inflation clause must actually catch a gray peer the cluster
// fails to route around: with health detection off (the health_detection
// mutation knob, Config::health.enabled=false) a 25x-slow closest peer
// keeps serving every GET of its colocated client for the whole window, so
// the in-window GET p99 dwarfs the quiet baseline and the clause fires.
// The control run (detection on) demotes the peer after its first
// over-baseline samples and stays clean under the identical fault plan.
// The binary detector is deliberately held back (a generous ping deadline)
// so only the health layer can react — the peer is gray, not down.

sim::Task<void> gray_mutation_workload(sim::Simulation& sim,
                                       sim::SloOracle& slo,
                                       WieraClient& client, int index,
                                       TimePoint end) {
  co_await sim.delay(msec(300) + msec(100) * static_cast<double>(index));
  const std::string key = "gm-" + std::to_string(index);
  auto put = co_await client.put(key, Blob("v0"));
  EXPECT_TRUE(put.ok()) << put.status().to_string();
  while (sim.now() < end) {
    const TimePoint start = sim.now();
    auto got = co_await client.get(key);
    slo.record_get(client.id(), key,
                   got.ok() ? got->value.to_string() : "", start, sim.now(),
                   got.ok() ? StatusCode::kOk : got.status().code(),
                   client.last_trace_id());
    co_await sim.delay(msec(60));
  }
}

struct GrayMutationResult {
  std::vector<sim::SloViolation> violations;
  int64_t probation_entries = 0;
};

GrayMutationResult run_gray_mutation(bool health_on) {
  ScenarioCluster cluster(
      /*seed=*/13, [health_on](WieraController::Config& config) {
        config.health.enabled = health_on;
        // The slowed peer must stay "alive": its pings arrive late but
        // inside this deadline, so node_alive_ never flips and only the
        // health layer (when armed) can respond.
        config.ping_deadline = sec(5);
      });
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kEventual));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  ChaosHost chaos_host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, chaos_host);
  sim::FaultPlan plan;
  plan.slow_node("tiera-us-west", 25.0, TimePoint::origin() + sec(8),
                 TimePoint::origin() + sec(20));
  injector.arm(std::move(plan));

  WieraClient::Config client_config;
  client_config.op_deadline = sec(3);
  client_config.health = &cluster.controller.health();

  sim::SloOracle slo;
  slo.set_window(TimePoint::origin() + sec(8), TimePoint::origin() + sec(20));
  std::vector<std::unique_ptr<WieraClient>> clients;
  const TimePoint workload_end = TimePoint::origin() + sec(24);
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<WieraClient>(
        cluster.sim, cluster.network, cluster.registry,
        "app-" + std::to_string(i), kClientNodes[i], *peers, client_config));
    cluster.sim.spawn(gray_mutation_workload(cluster.sim, slo,
                                             *clients.back(), i,
                                             workload_end));
  }
  cluster.sim.run_until(TimePoint(sec(26).us()));

  sim::SloContract contract;
  contract.scenario = "gray-mutation";
  contract.max_get_p99_inflation = 6.0;
  GrayMutationResult result;
  result.violations = slo.check(contract, cluster.sim.telemetry().registry(),
                                {"app-0", "app-1", "app-2"});
  result.probation_entries = cluster.controller.health().probation_entries();
  return result;
}

TEST(ScenarioMutationTest, DisabledHealthDetectionTripsTheInflationClause) {
  GrayMutationResult mutated = run_gray_mutation(/*health_on=*/false);
  EXPECT_EQ(mutated.probation_entries, 0);
  bool inflation_fired = false;
  for (const auto& v : mutated.violations) {
    if (v.check == "get-p99-inflation") inflation_fired = true;
  }
  EXPECT_TRUE(inflation_fired)
      << "health detection off but the SLO oracle saw nothing\n"
      << sim::SloOracle::describe(mutated.violations);

  GrayMutationResult control = run_gray_mutation(/*health_on=*/true);
  EXPECT_GE(control.probation_entries, 1);
  EXPECT_TRUE(control.violations.empty())
      << sim::SloOracle::describe(control.violations);
}

// --------------------------------------------- alert-precedes-violation

// Mutation pair for the burn-rate alert layer (docs/METRICS_PIPELINE.md):
// a latency spike pushes the colocated client's GET p99 far past the
// contract bound for the whole SLO window, so the get-p99 clause trips
// either way. The armed run scrapes the client's p99 series every 100ms and
// a value-above rule must fire *strictly before* the clause's evidence time
// — feeding the firings into the oracle satisfies its require_detection
// guard. The mutated run leaves the pipeline unarmed: same violation, no
// alert, and the oracle reports the detection-gap — proving the alert layer
// (not the fault) is what closes the guard.

sim::Task<void> alert_mutation_workload(sim::Simulation& sim,
                                        sim::SloOracle& slo,
                                        WieraClient& client, TimePoint end) {
  co_await sim.delay(msec(300));
  const std::string key = "am-0";
  auto put = co_await client.put(key, Blob("v0"));
  EXPECT_TRUE(put.ok()) << put.status().to_string();
  while (sim.now() < end) {
    const TimePoint start = sim.now();
    auto got = co_await client.get(key);
    slo.record_get(client.id(), key,
                   got.ok() ? got->value.to_string() : "", start, sim.now(),
                   got.ok() ? StatusCode::kOk : got.status().code(),
                   client.last_trace_id());
    co_await sim.delay(msec(60));
  }
}

struct AlertMutationResult {
  std::vector<sim::SloViolation> violations;
  bool alert_fired = false;
  TimePoint first_alert = TimePoint::max();
};

AlertMutationResult run_alert_mutation(bool armed) {
  ScenarioCluster cluster(
      /*seed=*/17, [](WieraController::Config& config) {
        // The spiked peer must stay "alive" (pings late but in-deadline):
        // the degradation is visible only in the latency tail the sampler
        // scrapes, never to the binary detector.
        config.ping_deadline = sec(5);
      });
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kEventual));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  ChaosHost chaos_host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, chaos_host);
  sim::FaultPlan plan;
  plan.latency_spike("tiera-us-west", msec(300), TimePoint::origin() + sec(8),
                     TimePoint::origin() + sec(20));
  injector.arm(std::move(plan));

  sim::ObsPipeline pipeline(cluster.sim);
  obs::AlertRule rule;
  rule.name = "get-p99-burn";
  rule.clause = "get-p99";
  rule.kind = obs::AlertRule::Kind::kValueAbove;
  rule.series = "wiera_client_get_latency_us{client=\"app-0\"}#p99_us";
  rule.budget = static_cast<double>(msec(200).us());
  rule.long_window = sec(2);
  rule.short_window = msec(500);
  pipeline.add_rule(rule);
  if (armed) {
    sim::ObsPipeline::Config obs_config;
    obs_config.interval = msec(100);
    obs_config.until = TimePoint::origin() + sec(24);
    pipeline.arm(obs_config);
  }

  WieraClient::Config client_config;
  client_config.op_deadline = sec(3);

  sim::SloOracle slo;
  slo.set_window(TimePoint::origin() + sec(8), TimePoint::origin() + sec(20));
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app-0",
                     "client-us-west", *peers, client_config);
  cluster.sim.spawn(alert_mutation_workload(cluster.sim, slo, client,
                                            TimePoint::origin() + sec(22)));
  cluster.sim.run_until(TimePoint(sec(24).us()));

  pipeline.feed(slo);
  sim::SloContract contract;
  contract.scenario = "alert-mutation";
  contract.max_get_p99 = msec(200);
  contract.require_detection = true;
  contract.guarded_clauses = {"get-p99"};
  AlertMutationResult result;
  result.violations =
      slo.check(contract, cluster.sim.telemetry().registry(), {"app-0"});
  result.alert_fired = pipeline.alerts().fired("get-p99");
  result.first_alert = pipeline.alerts().first_firing("get-p99");
  return result;
}

TEST(ScenarioMutationTest, BurnRateAlertFiresBeforeTheSloClauseTrips) {
  // Mutated: pipeline unarmed. The clause trips and — with no alert on
  // record — the guard reports the detection gap.
  AlertMutationResult mutated = run_alert_mutation(/*armed=*/false);
  EXPECT_FALSE(mutated.alert_fired);
  bool clause = false, gap = false;
  for (const auto& v : mutated.violations) {
    if (v.check == "get-p99") clause = true;
    if (v.check == "detection-gap") gap = true;
  }
  EXPECT_TRUE(clause) << "latency spike never tripped the clause\n"
                      << sim::SloOracle::describe(mutated.violations);
  EXPECT_TRUE(gap) << "unarmed pipeline but no detection-gap\n"
                   << sim::SloOracle::describe(mutated.violations);

  // Control: identical fault, pipeline armed. Same clause, no gap, and the
  // alert fired strictly before the clause's evidence time.
  AlertMutationResult control = run_alert_mutation(/*armed=*/true);
  EXPECT_TRUE(control.alert_fired) << "armed pipeline never fired";
  TimePoint clause_at = TimePoint::max();
  for (const auto& v : control.violations) {
    EXPECT_NE(v.check, "detection-gap")
        << "alert on record but the oracle still saw a gap";
    if (v.check == "get-p99") clause_at = v.at;
  }
  ASSERT_NE(clause_at, TimePoint::max())
      << "control run lost the clause violation\n"
      << sim::SloOracle::describe(control.violations);
  EXPECT_LT(control.first_alert, clause_at)
      << "alert did not precede the violation";
}

// ------------------------------------------------- attribution sweep

// Acceptance sweep for the failure-attribution path: across seeds a forced
// SLO failure (an impossible latency bound under an injected degradation of
// a hot key's home peer) must always yield a report that names the injected
// fault event and the hot key from the peer-side sketch.

sim::Task<void> hot_key_workload(sim::Simulation& sim, sim::SloOracle& slo,
                                 WieraClient& client, TimePoint end) {
  co_await sim.delay(msec(200));
  auto put = co_await client.put("hot-0", Blob("v0"));
  EXPECT_TRUE(put.ok()) << put.status().to_string();
  while (sim.now() < end) {
    const TimePoint start = sim.now();
    auto got = co_await client.get("hot-0");
    slo.record_get(client.id(), "hot-0",
                   got.ok() ? got->value.to_string() : "", start, sim.now(),
                   got.ok() ? StatusCode::kOk : got.status().code(),
                   client.last_trace_id());
    co_await sim.delay(msec(80));
  }
}

std::string run_attribution_probe(uint64_t seed) {
  ScenarioCluster cluster(seed, [](WieraController::Config& config) {
    config.ping_deadline = sec(5);
  });
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kEventual,
                                [](WieraPeer::Config& config) {
                                  config.key_stats.enabled = true;
                                }));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  ChaosHost chaos_host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, chaos_host);
  sim::FaultPlan plan;
  // Alternate the injected class by seed so the sweep exercises both
  // describe() spellings in the report.
  const bool slow = (seed % 2) == 0;
  if (slow) {
    plan.slow_node("tiera-us-west", 10.0, TimePoint::origin() + sec(3),
                   TimePoint::origin() + sec(8));
  } else {
    plan.latency_spike("tiera-us-west", msec(150),
                       TimePoint::origin() + sec(3),
                       TimePoint::origin() + sec(8));
  }
  injector.arm(std::move(plan));

  WieraClient::Config client_config;
  client_config.op_deadline = sec(3);
  sim::SloOracle slo;
  slo.set_window(TimePoint::origin() + sec(1), TimePoint::origin() + sec(10));
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app-0",
                     "client-us-west", *peers, client_config);
  cluster.sim.spawn(hot_key_workload(cluster.sim, slo, client,
                                     TimePoint::origin() + sec(12)));
  cluster.sim.run_until(TimePoint(sec(13).us()));

  // An impossible bound forces the clause: the report, not the verdict, is
  // under test here.
  sim::SloContract contract;
  contract.scenario = "attribution-probe";
  contract.max_get_p99 = usec(1);
  auto violations =
      slo.check(contract, cluster.sim.telemetry().registry(), {"app-0"});
  EXPECT_FALSE(violations.empty()) << "seed " << seed;

  sim::AttributionReport report;
  report.set_context("scenario", slow ? "probe:slownode" : "probe:spike",
                     seed, cluster.sim.checker().trace_hash());
  report.set_window(TimePoint::origin() + sec(1),
                    TimePoint::origin() + sec(10));
  report.add_violations(violations);
  report.set_fault_timeline(injector.timeline());
  const TimePoint now = cluster.sim.now();
  for (const std::string& node : *peers) {
    const WieraPeer* peer = cluster.controller.peer(node);
    if (peer != nullptr) report.add_key_stats(node, peer->key_stats(), now);
  }
  report.set_tracer(cluster.sim.telemetry().tracer());
  return report.render_text();
}

TEST(AttributionSweepTest, ReportNamesTheFaultAndTheHotKeyAcrossSeeds) {
  const int seeds = seed_count();
  for (int seed = 1; seed <= seeds; ++seed) {
    const std::string text =
        run_attribution_probe(static_cast<uint64_t>(seed));
    const char* fault_tag =
        (seed % 2) == 0 ? "slow-node node=tiera-us-west"
                        : "latency-spike node=tiera-us-west";
    EXPECT_NE(text.find(fault_tag), std::string::npos)
        << "seed " << seed << ": report missed the injected fault\n"
        << text;
    EXPECT_NE(text.find("key=hot-0"), std::string::npos)
        << "seed " << seed << ": report missed the hot key\n"
        << text;
    EXPECT_NE(text.find("END-ATTRIBUTION-REPORT"), std::string::npos)
        << "seed " << seed;
  }
}

// --------------------------------------------------- client failover paths

struct ProbeResult {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  Duration elapsed = Duration::zero();
};

sim::Task<void> draining_probe(sim::Simulation& sim,
                               WieraController& controller,
                               WieraClient& client, ProbeResult& before,
                               ProbeResult& after) {
  co_await sim.delay(sec(1));
  TimePoint start = sim.now();
  auto first = co_await client.put("k0", Blob("v0"));
  before.ok = first.ok();
  before.elapsed = sim.now() - start;

  co_await sim.delay(sec(1));
  WieraPeer* peer = controller.peer("tiera-us-west");
  EXPECT_NE(peer, nullptr);
  if (peer == nullptr) co_return;
  peer->enter_draining();

  start = sim.now();
  auto second = co_await client.put("k0", Blob("v1"));
  after.ok = second.ok();
  if (!second.ok()) after.code = second.status().code();
  after.elapsed = sim.now() - start;
}

// Regression (satellite 2): a request hitting a draining peer fails over
// within its retry budget instead of burning the full op deadline — the
// availability gate answers kUnavailable immediately, it does not sit on
// the request.
TEST(ClientFailoverTest, DrainingPeerFailsOverWithinRetryBudget) {
  ScenarioCluster cluster(/*seed=*/21);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kEventual));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  WieraClient::Config config;
  config.op_deadline = sec(3);
  config.retry_budget_per_sec = 5;
  config.retry_budget_capacity = 10;
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app-0",
                     "client-us-west", *peers, config);
  ASSERT_EQ(client.closest_peer(), "tiera-us-west");

  ProbeResult before, after;
  cluster.sim.spawn(draining_probe(cluster.sim, cluster.controller, client,
                                   before, after));
  cluster.sim.run_until(TimePoint(sec(10).us()));

  EXPECT_TRUE(before.ok);
  EXPECT_TRUE(after.ok) << status_code_name(after.code);
  EXPECT_LT(after.elapsed.us(), sec(1).us())
      << "failover from a draining peer burned " << after.elapsed.us()
      << "us";
  EXPECT_GE(client.failovers(), 1);
  EXPECT_EQ(client.attempt_timeouts(), 0);
}

sim::Task<void> stalled_probe(sim::Simulation& sim, WieraClient& client,
                              ProbeResult& result) {
  co_await sim.delay(sec(2));
  const TimePoint start = sim.now();
  auto put = co_await client.put("k0", Blob("v0"));
  result.ok = put.ok();
  if (!put.ok()) result.code = put.status().code();
  result.elapsed = sim.now() - start;
}

ProbeResult run_stalled(bool attempt_timeout, int64_t& attempt_timeouts) {
  ScenarioCluster cluster(/*seed=*/23);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kEventual));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  // A stalled region: every message touching the client's closest peer is
  // delayed far past the op deadline. Unlike a dropped message (which the
  // network surfaces as a bounded kUnavailable after its unreachable wait)
  // nothing here errors — the attempt just sits in flight, which is exactly
  // the regime the per-attempt bound exists for.
  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.latency_spike("tiera-us-west", sec(20), TimePoint::origin() + sec(1),
                     TimePoint::origin() + sec(20));
  injector.arm(std::move(plan));

  WieraClient::Config config;
  config.op_deadline = sec(3);
  config.retry_budget_per_sec = 5;
  config.retry_budget_capacity = 10;
  if (attempt_timeout) config.failover_attempt_timeout = msec(400);
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app-0",
                     "client-us-west", *peers, config);

  ProbeResult result;
  cluster.sim.spawn(stalled_probe(cluster.sim, client, result));
  cluster.sim.run_until(TimePoint(sec(10).us()));
  attempt_timeouts = client.attempt_timeouts();
  return result;
}

// Regression (satellite 2): without the per-attempt bound, one stalled
// peer burns the whole op deadline before the client ever tries a healthy
// replica; with it, the op fails over at the attempt timeout and succeeds.
TEST(ClientFailoverTest, AttemptTimeoutRescuesOpsFromAStalledPeer) {
  int64_t with_timeouts = 0;
  ProbeResult with = run_stalled(/*attempt_timeout=*/true, with_timeouts);
  EXPECT_TRUE(with.ok) << status_code_name(with.code);
  EXPECT_LT(with.elapsed.us(), sec(2).us());
  EXPECT_GE(with_timeouts, 1);

  int64_t without_timeouts = 0;
  ProbeResult without =
      run_stalled(/*attempt_timeout=*/false, without_timeouts);
  EXPECT_FALSE(without.ok);
  EXPECT_EQ(without.code, StatusCode::kDeadlineExceeded);
  EXPECT_GE(without.elapsed.us(), msec(2500).us())
      << "seed behaviour: the op deadline is the only attempt bound";
  EXPECT_EQ(without_timeouts, 0);
}

// ----------------------------------------- strong-mode primary evacuation

sim::Task<void> strong_workload(sim::Simulation& sim, sim::SloOracle& slo,
                                WieraClient& client) {
  co_await sim.delay(sec(1));
  for (int round = 0; round < 16; ++round) {
    const std::string value = "r" + std::to_string(round);
    TimePoint start = sim.now();
    auto put = co_await client.put("k0", Blob(value));
    slo.record_put(client.id(), "k0", value, start, sim.now(),
                   put.ok() ? StatusCode::kOk : put.status().code(),
                   client.last_trace_id());

    co_await sim.delay(msec(300));
    start = sim.now();
    auto got = co_await client.get("k0");
    StatusCode code = StatusCode::kOk;
    if (!got.ok()) code = got.status().code();
    slo.record_get(client.id(), "k0",
                   got.ok() ? got->value.to_string() : "", start, sim.now(),
                   code, client.last_trace_id());
    co_await sim.delay(msec(600));
  }
}

// Draining the sync-mode primary is the hardest evacuation: primary-ship
// must move, backups must re-point their forwards, and every in-flight put
// must still resolve inside its deadline.
TEST(ScenarioOperationalTest, EvacuatingTheSyncPrimaryKeepsClientsWhole) {
  ScenarioCluster cluster(/*seed=*/31);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupSync));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();
  const std::string old_primary = cluster.controller.current_primary("w1");
  ASSERT_FALSE(old_primary.empty());

  ScenarioHost host(cluster.sim, cluster.controller, "w1");
  sim::ScenarioEngine engine(cluster.sim, host);
  sim::ScenarioPlan plan;
  plan.drain_region(old_primary, TimePoint::origin() + sec(5),
                    TimePoint::origin() + sec(25));
  engine.arm(std::move(plan));

  WieraClient::Config config;
  config.op_deadline = sec(3);
  config.failover_attempt_timeout = msec(400);
  config.retry_budget_per_sec = 5;
  config.retry_budget_capacity = 10;
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app-0",
                     "client-eu-west", *peers, config);

  sim::SloOracle slo;
  slo.set_window(TimePoint::origin() + sec(1), TimePoint::origin() + sec(16));
  cluster.sim.spawn(strong_workload(cluster.sim, slo, client));
  cluster.sim.run_until(TimePoint(sec(30).us()));

  sim::SloContract contract;
  contract.scenario = "sync-primary-evacuation";
  contract.no_failed_ops = true;
  contract.no_corrupt_reads = true;
  contract.session_reads = true;
  contract.max_availability_gap = sec(6);
  auto violations =
      slo.check(contract, cluster.sim.telemetry().registry(), {"app-0"});
  EXPECT_TRUE(violations.empty())
      << sim::SloOracle::describe(violations) << engine.render_timeline();
  EXPECT_EQ(cluster.controller.drains_completed(), 1);
  EXPECT_EQ(host.failed_operations(), 0);
  const std::string new_primary = cluster.controller.current_primary("w1");
  EXPECT_FALSE(new_primary.empty());
  EXPECT_NE(new_primary, old_primary);
  auto members = cluster.controller.get_instances("w1");
  ASSERT_TRUE(members.ok());
  for (const std::string& node : *members) EXPECT_NE(node, old_primary);
}

// ------------------------------------------------------------------ replay
//
// scenario_test --seed N --scenario NAME[:FAULT]   (FAULT: none|partition|
// crash|stutter|flakylink|slownode; default none) replays one schedule and
// exits 0 iff it is clean —
// the reproducer line scripts/scenario_sweep.sh prints for a failing seed.
// Add --dump-telemetry (or WIERA_DUMP_TELEMETRY=1) for the timeline,
// metrics snapshot and span trees of the replayed run, and
// --dump-timeseries (WIERA_DUMP_TIMESERIES=1) to arm the ObsPipeline
// scraper + per-peer hot-key sketches and print TIMESERIES-SNAPSHOT /
// KEYSTATS blocks (docs/METRICS_PIPELINE.md).

int replay_main(uint64_t seed, const std::string& spec) {
  std::string name = spec;
  ComposedFault fault = ComposedFault::kNone;
  const size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    name = spec.substr(0, colon);
    const std::string fault_spec = spec.substr(colon + 1);
    if (fault_spec == "partition") {
      fault = ComposedFault::kPartition;
    } else if (fault_spec == "crash") {
      fault = ComposedFault::kCrash;
    } else if (fault_spec == "stutter") {
      fault = ComposedFault::kStutter;
    } else if (fault_spec == "flakylink") {
      fault = ComposedFault::kFlakyLink;
    } else if (fault_spec == "slownode") {
      fault = ComposedFault::kSlowNode;
    } else if (fault_spec != "none") {
      std::fprintf(stderr, "unknown fault class '%s'\n", fault_spec.c_str());
      return 2;
    }
  }
  bool known = false;
  for (const std::string& builtin : sim::ScenarioPlan::builtin_names()) {
    if (builtin == name) known = true;
  }
  if (!known) {
    std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
    return 2;
  }
  ScenarioRunResult r = run_scenario(name, fault, seed);
  print_scenario_stats(name, fault, seed, r);
  if (is_gray_fault(fault) || is_gray_scenario(name)) {
    print_health_stats(name, fault, seed, r);
  }
  bool clean = true;
  if (!r.slo_violations.empty()) {
    std::printf("%s", sim::SloOracle::describe(r.slo_violations).c_str());
    clean = false;
  }
  if (!r.violations.empty()) {
    std::printf("%s",
                sim::ConsistencyOracle::describe(r.violations).c_str());
    clean = false;
  }
  if (!r.convergence_violations.empty()) {
    std::printf(
        "%s",
        sim::ConsistencyOracle::describe(r.convergence_violations).c_str());
    clean = false;
  }
  if (!clean) {
    std::printf("%s", r.timeline.c_str());
    return 1;
  }
  std::printf("replay clean\n");
  return 0;
}

// scenario_test --attribution-sample [--seed N]: run the forced-failure
// attribution probe for one seed and print the rendered report — the sample
// artifact scripts/obs_sweep.sh generates for CI upload
// (docs/METRICS_PIPELINE.md). Exits 0 iff a complete report was produced.
int attribution_sample_main(uint64_t seed) {
  const std::string text = run_attribution_probe(seed);
  std::printf("%s", text.c_str());
  const bool complete =
      text.find("END-ATTRIBUTION-REPORT") != std::string::npos;
  return complete ? 0 : 1;
}

// scenario_test --list-scenarios: one valid --scenario name per line, so
// sweep scripts validate their matrix against the binary instead of
// grepping source (scripts/sweep_lib.sh sweep_validate_tokens).
int list_scenarios_main() {
  for (const std::string& name : sim::ScenarioPlan::builtin_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace wiera::geo

// Custom main (gtest_main is deliberately not linked, see tests/CMakeLists):
// with --scenario the binary replays a single schedule and exits, with
// --list-scenarios it prints the valid scenario names; otherwise it runs
// the whole suite.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  uint64_t seed = 1;
  std::string scenario;
  bool attribution_sample = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario = argv[++i];
    } else if (arg == "--list-scenarios") {
      return wiera::geo::list_scenarios_main();
    } else if (arg == "--attribution-sample") {
      attribution_sample = true;
    } else if (arg == "--dump-telemetry") {
      setenv("WIERA_DUMP_TELEMETRY", "1", 1);
    } else if (arg == "--dump-timeseries") {
      setenv("WIERA_DUMP_TIMESERIES", "1", 1);
    }
  }
  if (attribution_sample) return wiera::geo::attribution_sample_main(seed);
  if (!scenario.empty()) return wiera::geo::replay_main(seed, scenario);
  return RUN_ALL_TESTS();
}
