// Unit tests for the sim-time metrics pipeline (docs/METRICS_PIPELINE.md):
// ring-buffer time series with windowed queries, the registry scraper, the
// space-saving hot-key sketch, multi-window burn-rate alert rules, histogram
// snapshot/diff deltas, the sim-layer scrape driver, and the failure
// attribution report.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/alerts.h"
#include "obs/keystats.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/attribution.h"
#include "sim/faults.h"
#include "sim/obs_pipeline.h"
#include "sim/simulation.h"
#include "sim/slo.h"

namespace wiera::obs {
namespace {

TimePoint at_ms(int64_t ms) { return TimePoint::origin() + msec(ms); }

// -------------------------------------------------------------- time series

TEST(TimeSeriesTest, WindowedQueriesOverACumulativeCounter) {
  TimeSeries ts(64);
  // Counter growing by 10 per second for 10s.
  for (int i = 0; i <= 9; ++i) {
    ts.record(at_ms(i * 1000), 10.0 * i);
  }
  const TimePoint now = at_ms(9000);
  // Window [4s, 9s] holds values 40..90: delta 50, rate 10/s.
  EXPECT_DOUBLE_EQ(ts.delta_over(sec(5), now), 50.0);
  EXPECT_DOUBLE_EQ(ts.rate_over(sec(5), now), 10.0);
  EXPECT_EQ(ts.samples_in(sec(5), now), 6u);
  EXPECT_DOUBLE_EQ(ts.max_over(sec(5), now), 90.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(sec(5), now), 65.0);
  EXPECT_TRUE(ts.covers(sec(5), now));
  // The retained history starts at t=0, so a 20s window is not covered.
  EXPECT_FALSE(ts.covers(sec(20), now));
}

TEST(TimeSeriesTest, RingDropsOldestAtCapacity) {
  TimeSeries ts(4);
  EXPECT_EQ(ts.capacity(), 4u);
  for (int i = 0; i < 10; ++i) ts.record(at_ms(i), static_cast<double>(i));
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.dropped(), 6);
  // Oldest-to-newest iteration holds the tail of the stream.
  EXPECT_DOUBLE_EQ(ts.oldest().value, 6.0);
  EXPECT_DOUBLE_EQ(ts.at(1).value, 7.0);
  EXPECT_DOUBLE_EQ(ts.at(2).value, 8.0);
  EXPECT_DOUBLE_EQ(ts.latest().value, 9.0);
}

TEST(TimeSeriesTest, PercentileOverIsNearestRank) {
  TimeSeries ts(16);
  // Out-of-order *values* (times ascending): percentile sorts values.
  ts.record(at_ms(1), 30.0);
  ts.record(at_ms(2), 10.0);
  ts.record(at_ms(3), 40.0);
  ts.record(at_ms(4), 20.0);
  const TimePoint now = at_ms(4);
  // rank = max(1, ceil(q*n)) over sorted {10,20,30,40}.
  EXPECT_DOUBLE_EQ(ts.percentile_over(sec(1), now, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.percentile_over(sec(1), now, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(ts.percentile_over(sec(1), now, 0.51), 30.0);
  EXPECT_DOUBLE_EQ(ts.percentile_over(sec(1), now, 0.99), 40.0);
}

TEST(TimeSeriesTest, EmptyAndSparseSeriesReadAsZero) {
  TimeSeries ts;
  const TimePoint now = at_ms(1000);
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.delta_over(sec(1), now), 0.0);
  EXPECT_DOUBLE_EQ(ts.rate_over(sec(1), now), 0.0);
  EXPECT_DOUBLE_EQ(ts.percentile_over(sec(1), now, 0.99), 0.0);
  EXPECT_FALSE(ts.covers(sec(1), now));
  // One sample: no delta (needs two), but percentile/max see it.
  ts.record(now, 7.0);
  EXPECT_DOUBLE_EQ(ts.delta_over(sec(1), now), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_over(sec(1), now), 7.0);
  EXPECT_FALSE(ts.covers(sec(1), now));
}

TEST(TimeSeriesTest, RenderJsonIsDeterministic) {
  TimeSeries ts(8);
  ts.record(at_ms(1), 1.5);
  ts.record(at_ms(2), 2.5);
  const std::string json = ts.render_json();
  EXPECT_NE(json.find("\"n\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":[["), std::string::npos);
  EXPECT_EQ(json, ts.render_json());
}

// ------------------------------------------------------------------ sampler

TEST(SamplerTest, ScrapeCapturesCountersGaugesAndHistogramDerivatives) {
  Registry reg;
  Counter* ops = reg.counter("ops_total", {{"instance", "NYC"}});
  Gauge* depth = reg.gauge("queue_depth");
  Histogram* lat = reg.histogram("op_us");

  Sampler sampler;
  ops->inc(5);
  depth->set(3.0);
  lat->record(msec(10));
  sampler.scrape(reg, at_ms(100));
  ops->inc(5);
  lat->record(msec(30));
  sampler.scrape(reg, at_ms(200));

  EXPECT_EQ(sampler.scrapes(), 2);
  EXPECT_EQ(sampler.last_scrape(), at_ms(200));
  const TimeSeries* c = sampler.series("ops_total{instance=\"NYC\"}");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->oldest().value, 5.0);
  EXPECT_DOUBLE_EQ(c->latest().value, 10.0);
  const TimeSeries* g = sampler.series("queue_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->latest().value, 3.0);
  const TimeSeries* hc = sampler.series("op_us#count");
  ASSERT_NE(hc, nullptr);
  EXPECT_DOUBLE_EQ(hc->latest().value, 2.0);
  const TimeSeries* hp = sampler.series("op_us#p99_us");
  ASSERT_NE(hp, nullptr);
  // Two exact samples: nearest-rank p99 is the max.
  EXPECT_DOUBLE_EQ(hp->latest().value,
                   static_cast<double>(msec(30).us()));
  ASSERT_NE(sampler.series("op_us#sum_us"), nullptr);
  EXPECT_EQ(sampler.series("nope_total"), nullptr);
  EXPECT_EQ(sampler.series_count(), 5u);
  // render_json is sorted by series id and byte-stable.
  EXPECT_EQ(sampler.render_json(), sampler.render_json());
  EXPECT_NE(sampler.render_json().find("\"scrapes\":2"), std::string::npos);
}

TEST(SamplerTest, PerSeriesKeepBoundsMemory) {
  Registry reg;
  Counter* c = reg.counter("x_total");
  Sampler sampler{Sampler::Config{/*keep=*/3}};
  for (int i = 0; i < 8; ++i) {
    c->inc();
    sampler.scrape(reg, at_ms(i * 10));
  }
  const TimeSeries* ts = sampler.series("x_total");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->size(), 3u);
  EXPECT_EQ(ts->dropped(), 5);
  EXPECT_DOUBLE_EQ(ts->latest().value, 8.0);
}

// ----------------------------------------------------------------- keystats

TEST(KeyStatsTest, DisabledSketchRecordsNothingAndRegistersNothing) {
  Registry reg;
  KeyStats stats;  // default config: disabled
  stats.bind(&reg, "NYC");
  stats.record_access("k0", "app-0", at_ms(100), /*is_put=*/false);
  EXPECT_EQ(stats.total_accesses(), 0);
  EXPECT_TRUE(stats.top_keys(5, at_ms(100)).empty());
  // No series materialized: the registry dump stays byte-identical.
  EXPECT_EQ(reg.counter_sum("wiera_keystats_accesses_total"), 0);
  EXPECT_EQ(reg.render_text(), Registry().render_text());
}

TEST(KeyStatsTest, SpaceSavingEvictsMinimumAndBoundsTheError) {
  KeyStats::Config config;
  config.enabled = true;
  config.top_k = 2;
  KeyStats stats(config);
  const TimePoint t = at_ms(100);
  stats.record_access("a", "t0", t, false);
  stats.record_access("a", "t0", t, false);
  stats.record_access("a", "t0", t, false);
  stats.record_access("b", "t0", t, false);
  // Sketch full {a:3, b:1}: "c" evicts the minimum (b) and inherits its
  // count as the overestimate.
  stats.record_access("c", "t0", t, false);
  auto top = stats.top_keys(5, t);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, "a");
  EXPECT_EQ(top[0].count, 3);
  EXPECT_EQ(top[0].overestimate, 0);
  EXPECT_EQ(top[1].id, "c");
  EXPECT_EQ(top[1].count, 2);
  EXPECT_EQ(top[1].overestimate, 1);
  // count - overestimate lower-bounds the true frequency (c appeared once).
  EXPECT_LE(top[1].count - top[1].overestimate, 1);
  EXPECT_EQ(stats.total_accesses(), 5);
}

TEST(KeyStatsTest, SlidingWindowRotatesAndForgetsStaleEpochs) {
  KeyStats::Config config;
  config.enabled = true;
  config.window = sec(5);
  KeyStats stats(config);
  for (int i = 0; i < 5; ++i) {
    stats.record_access("x", "t0", at_ms(1000), false);
  }
  // One epoch later: x slides into the previous epoch and still counts.
  stats.record_access("y", "t1", at_ms(1000) + sec(6), false);
  auto top = stats.top_keys(5, at_ms(1000) + sec(6));
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, "x");
  EXPECT_GT(top[0].rate_per_sec, 0.0);
  // Two whole epochs later: nothing recent survives except the new access.
  stats.record_access("z", "t2", at_ms(1000) + sec(20), false);
  top = stats.top_keys(5, at_ms(1000) + sec(20));
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, "z");
}

TEST(KeyStatsTest, TenantsTrackedSeparatelyWithDeterministicTieBreak) {
  KeyStats::Config config;
  config.enabled = true;
  KeyStats stats(config);
  const TimePoint t = at_ms(100);
  stats.record_access("k1", "beta", t, true);
  stats.record_access("k2", "alpha", t, false);
  auto tenants = stats.top_tenants(5, t);
  ASSERT_EQ(tenants.size(), 2u);
  // Equal counts break ties by id ascending.
  EXPECT_EQ(tenants[0].id, "alpha");
  EXPECT_EQ(tenants[1].id, "beta");
  EXPECT_EQ(stats.put_accesses(), 1);
  const std::string json = stats.render_json(t);
  EXPECT_NE(json.find("\"tenants\":"), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
}

TEST(KeyStatsTest, EnabledSketchRegistersSeriesLazily) {
  Registry reg;
  KeyStats::Config config;
  config.enabled = true;
  KeyStats stats(config);
  stats.bind(&reg, "NYC");
  // Bound but unexercised: still no series.
  EXPECT_EQ(reg.render_text(), Registry().render_text());
  stats.record_access("k0", "app-0", at_ms(100), false);
  stats.record_access("k0", "app-0", at_ms(200), false);
  EXPECT_EQ(reg.counter_value("wiera_keystats_accesses_total",
                              {{"instance", "NYC"}}),
            2);
}

// ------------------------------------------------------------------- alerts

// Drives a counter pair through quiet / burning / quiet / burning phases and
// checks the multi-window rule fires exactly once per breach episode.
TEST(AlertRulesTest, BurnRateIsEdgeTriggeredAndReArms) {
  Registry reg;
  Counter* bad = reg.counter("bad_total");
  Counter* ops = reg.counter("ops_total");
  Sampler sampler;
  AlertRules rules;
  AlertRule rule;
  rule.name = "shed-burn";
  rule.clause = "shed-fraction";
  rule.kind = AlertRule::Kind::kBurnRate;
  rule.series = "bad_total";
  rule.denominator = "ops_total";
  rule.budget = 0.1;
  rule.long_window = sec(2);
  rule.short_window = msec(500);
  rules.add(rule);
  EXPECT_EQ(rules.rule_count(), 1u);

  int tick = 0;
  const auto phase = [&](int ticks, int64_t bad_inc, int64_t ops_inc) {
    for (int i = 0; i < ticks; ++i) {
      bad->inc(bad_inc);
      ops->inc(ops_inc);
      tick++;
      sampler.scrape(reg, at_ms(tick * 100));
      rules.evaluate(sampler, at_ms(tick * 100));
    }
  };

  phase(40, 0, 10);  // 4s quiet: windows covered, burn 0
  EXPECT_TRUE(rules.firings().empty());
  phase(30, 3, 10);  // 3s burning at 30% >> 10% budget
  ASSERT_EQ(rules.firings().size(), 1u);
  const TimePoint first = rules.firings()[0].at;
  EXPECT_GE(rules.firings()[0].long_burn, 1.0);
  EXPECT_GE(rules.firings()[0].short_burn, 1.0);
  phase(30, 0, 10);  // clears
  EXPECT_EQ(rules.firings().size(), 1u);
  phase(30, 3, 10);  // second breach episode
  ASSERT_EQ(rules.firings().size(), 2u);
  EXPECT_TRUE(rules.fired("shed-fraction"));
  EXPECT_EQ(rules.first_firing("shed-fraction"), first);
  EXPECT_EQ(rules.first_firing("no-such-clause"), TimePoint::max());
  EXPECT_NE(rules.render_text().find("ALERT shed-burn"), std::string::npos);
  EXPECT_NE(rules.render_json().find("\"clause\":\"shed-fraction\""),
            std::string::npos);
}

TEST(AlertRulesTest, PartialWindowCoverageCannotFire) {
  Registry reg;
  Counter* bad = reg.counter("bad_total");
  Counter* ops = reg.counter("ops_total");
  Sampler sampler;
  AlertRules rules;
  AlertRule rule;
  rule.name = "shed-burn";
  rule.clause = "shed-fraction";
  rule.series = "bad_total";
  rule.denominator = "ops_total";
  rule.budget = 0.01;
  rule.long_window = sec(10);  // longer than the whole drive below
  rule.short_window = msec(200);
  rules.add(rule);
  for (int i = 1; i <= 20; ++i) {
    bad->inc(10);
    ops->inc(10);  // 100% bad: would scream if windows were ready
    sampler.scrape(reg, at_ms(i * 100));
    rules.evaluate(sampler, at_ms(i * 100));
  }
  EXPECT_TRUE(rules.firings().empty())
      << "fired on a window the series does not cover";
}

TEST(AlertRulesTest, ValueAboveGuardsLatencyBounds) {
  Registry reg;
  Gauge* p99 = reg.gauge("get_p99_us");
  Sampler sampler;
  AlertRules rules;
  AlertRule rule;
  rule.name = "get-p99-burn";
  rule.clause = "get-p99";
  rule.kind = AlertRule::Kind::kValueAbove;
  rule.series = "get_p99_us";
  rule.budget = 1000.0;  // 1ms bound
  rule.long_window = sec(1);
  rule.short_window = msec(300);
  rules.add(rule);
  int tick = 0;
  const auto drive = [&](int ticks, double value) {
    for (int i = 0; i < ticks; ++i) {
      p99->set(value);
      tick++;
      sampler.scrape(reg, at_ms(tick * 100));
      rules.evaluate(sampler, at_ms(tick * 100));
    }
  };
  drive(15, 200.0);  // healthy
  EXPECT_TRUE(rules.firings().empty());
  drive(15, 5000.0);  // 5x the bound
  ASSERT_EQ(rules.firings().size(), 1u);
  EXPECT_EQ(rules.firings()[0].clause, "get-p99");
}

TEST(AlertRulesTest, StallFiresWhenProgressStops) {
  Registry reg;
  Counter* done = reg.counter("ops_ok_total");
  Sampler sampler;
  AlertRules rules;
  AlertRule rule;
  rule.name = "availability-stall";
  rule.clause = "availability-gap";
  rule.kind = AlertRule::Kind::kStall;
  rule.series = "ops_ok_total";
  rule.long_window = sec(2);
  rule.short_window = msec(500);
  rules.add(rule);
  int tick = 0;
  const auto drive = [&](int ticks, int64_t inc) {
    for (int i = 0; i < ticks; ++i) {
      done->inc(inc);
      tick++;
      sampler.scrape(reg, at_ms(tick * 100));
      rules.evaluate(sampler, at_ms(tick * 100));
    }
  };
  drive(30, 1);  // progressing
  EXPECT_TRUE(rules.firings().empty());
  drive(25, 0);  // frozen long enough to cover both windows
  ASSERT_EQ(rules.firings().size(), 1u);
  EXPECT_EQ(rules.firings()[0].clause, "availability-gap");
  drive(10, 1);  // progress resumes: latch re-arms, no spurious firing
  EXPECT_EQ(rules.firings().size(), 1u);
}

// --------------------------------------------------- histogram snapshot/diff

TEST(HistogramDeltaTest, SnapshotDiffYieldsExactIntervalPercentiles) {
  Registry reg;
  Histogram* h = reg.histogram("op_us");
  for (int i = 1; i <= 10; ++i) h->record(msec(i));
  const LatencyHistogram before = h->snapshot();
  EXPECT_EQ(before.count(), 10);
  for (int i = 101; i <= 106; ++i) h->record(msec(i));
  const LatencyHistogram delta = h->diff(before);
  // The interval histogram covers exactly the six new samples, with exact
  // nearest-rank percentiles over them.
  EXPECT_EQ(delta.count(), 6);
  EXPECT_EQ(delta.sum(), msec(101 + 102 + 103 + 104 + 105 + 106));
  EXPECT_EQ(delta.percentile(0.5), msec(103));
  EXPECT_EQ(delta.percentile(0.99), msec(106));
  EXPECT_EQ(delta.percentile(0.0), msec(101));
  // The cumulative histogram is untouched.
  EXPECT_EQ(h->count(), 16);
}

TEST(HistogramDeltaTest, DeltaSinceEdgeCases) {
  LatencyHistogram a;
  LatencyHistogram empty;
  a.record(msec(5));
  // Nothing recorded since: empty delta.
  const LatencyHistogram none = a.delta_since(a);
  EXPECT_EQ(none.count(), 0);
  // Earlier snapshot from a *different*, larger run: refused as empty
  // rather than producing negative counts.
  LatencyHistogram big;
  for (int i = 0; i < 5; ++i) big.record(msec(1));
  const LatencyHistogram refused = empty.delta_since(big);
  EXPECT_EQ(refused.count(), 0);
  // Delta against an empty baseline is the histogram itself.
  const LatencyHistogram all = a.delta_since(empty);
  EXPECT_EQ(all.count(), 1);
  EXPECT_EQ(all.percentile(0.99), msec(5));
}

TEST(HistogramDeltaTest, CustomExactCapKeepsNearestRankPastTheDefault) {
  // The default cap flips to ~12%-wide buckets past 64 samples; a raised cap
  // keeps the exact nearest-rank path (sim/slo.cpp's p99-inflation clause
  // relies on this for byte-identical messages).
  LatencyHistogram capped(int64_t{1} << 20);
  LatencyHistogram dflt;
  for (int i = 1; i <= 200; ++i) {
    capped.record(msec(i));
    dflt.record(msec(i));
  }
  // Exact nearest-rank p99 over 1..200ms: rank ceil(0.99*200)=198.
  EXPECT_EQ(capped.percentile(0.99), msec(198));
  EXPECT_EQ(capped.percentile(0.5), msec(100));
  // The default-cap histogram is bucketed by now: approximate, not exact.
  const Duration approx = dflt.percentile(0.5);
  EXPECT_GE(approx, msec(100));
  EXPECT_LE(approx.us(), static_cast<int64_t>(msec(100).us() * 1.13));
}

TEST(HistogramDeltaTest, ExactDeltaFallsBackToEnvelopeWhenBucketed) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(msec(10));
  const LatencyHistogram before = h;  // already bucketed (count > 64)
  for (int i = 0; i < 10; ++i) h.record(msec(50));
  const LatencyHistogram delta = h.delta_since(before);
  EXPECT_EQ(delta.count(), 10);
  // Bucketed interval: percentile stays inside the full-run envelope.
  EXPECT_GE(delta.percentile(0.99), msec(10));
  EXPECT_LE(delta.percentile(0.99).us(),
            static_cast<int64_t>(msec(50).us() * 1.13));
}

// ------------------------------------------------------------ obs pipeline

sim::Task<void> count_ops(sim::Simulation& sim, Counter* ops, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.delay(msec(50));
    ops->inc();
  }
}

TEST(ObsPipelineTest, UnarmedPipelineSchedulesNothing) {
  uint64_t bare_hash = 0;
  {
    sim::Simulation sim(7);
    Counter* ops = sim.telemetry().registry().counter("ops_total");
    sim.spawn(count_ops(sim, ops, 10), "workload");
    sim.run();
    bare_hash = sim.checker().trace_hash();
  }
  sim::Simulation sim(7);
  Counter* ops = sim.telemetry().registry().counter("ops_total");
  sim::ObsPipeline pipeline(sim);  // constructed but never armed
  sim.spawn(count_ops(sim, ops, 10), "workload");
  sim.run();
  EXPECT_FALSE(pipeline.armed());
  EXPECT_EQ(pipeline.sampler(), nullptr);
  EXPECT_EQ(sim.checker().trace_hash(), bare_hash)
      << "an unarmed pipeline must not perturb the schedule";
}

TEST(ObsPipelineTest, ArmedPipelineScrapesAndEvaluatesDeterministically) {
  const auto run = [](std::string* json) {
    sim::Simulation sim(7);
    Counter* ops = sim.telemetry().registry().counter("ops_total");
    sim::ObsPipeline pipeline(sim);
    AlertRule rule;
    rule.name = "ops-stall";
    rule.clause = "availability-gap";
    rule.kind = AlertRule::Kind::kStall;
    rule.series = "ops_total";
    rule.long_window = msec(400);
    rule.short_window = msec(200);
    pipeline.add_rule(rule);
    sim::ObsPipeline::Config config;
    config.interval = msec(20);
    config.until = TimePoint::origin() + sec(2);
    pipeline.arm(config);
    sim.spawn(count_ops(sim, ops, 10), "workload");
    sim.run_until(TimePoint(sec(2).us()));
    EXPECT_TRUE(pipeline.armed());
    EXPECT_GT(pipeline.sampler()->scrapes(), 50);
    EXPECT_NE(pipeline.sampler()->series("ops_total"), nullptr);
    // The workload stops at 500ms; the stall rule must notice.
    EXPECT_TRUE(pipeline.alerts().fired("availability-gap"));
    *json = pipeline.sampler()->render_json();
    return sim.checker().trace_hash();
  };
  std::string json_a, json_b;
  const uint64_t a = run(&json_a);
  const uint64_t b = run(&json_b);
  EXPECT_EQ(a, b) << "armed pipeline must replay bit-identical";
  EXPECT_EQ(json_a, json_b);
}

TEST(ObsPipelineTest, FeedReplaysFiringsIntoTheOracle) {
  sim::Simulation sim(3);
  Counter* ops = sim.telemetry().registry().counter("ops_total");
  sim::ObsPipeline pipeline(sim);
  AlertRule rule;
  rule.name = "ops-stall";
  rule.clause = "availability-gap";
  rule.kind = AlertRule::Kind::kStall;
  rule.series = "ops_total";
  rule.long_window = msec(400);
  rule.short_window = msec(200);
  pipeline.add_rule(rule);
  sim::ObsPipeline::Config config;
  config.interval = msec(20);
  config.until = TimePoint::origin() + sec(2);
  pipeline.arm(config);
  sim.spawn(count_ops(sim, ops, 5), "workload");
  sim.run_until(TimePoint(sec(2).us()));
  ASSERT_TRUE(pipeline.alerts().fired("availability-gap"));

  sim::SloOracle oracle;
  EXPECT_EQ(oracle.alerts(), 0);
  pipeline.feed(oracle);
  EXPECT_EQ(oracle.alerts(),
            static_cast<int64_t>(pipeline.alerts().firings().size()));
}

// ------------------------------------------------- detection-gap contract

TEST(DetectionGapTest, GuardedClauseWithoutAlertAppendsDetectionGap) {
  sim::SloOracle oracle;
  obs::Registry reg;
  // One failed GET at t=5s trips no-failed-ops with evidence time 5s.
  oracle.record_get("app-0", "k0", "", at_ms(4900), at_ms(5000),
                    StatusCode::kUnavailable, 0);
  sim::SloContract contract;
  contract.no_failed_ops = true;
  contract.require_detection = true;
  contract.guarded_clauses = {"no-failed-ops"};
  auto violations = oracle.check(contract, reg, {"app-0"});
  bool clause = false, gap = false;
  for (const auto& v : violations) {
    if (v.check == "no-failed-ops") clause = true;
    if (v.check == "detection-gap") {
      gap = true;
      EXPECT_EQ(v.at, at_ms(5000));
    }
  }
  EXPECT_TRUE(clause);
  EXPECT_TRUE(gap);

  // An alert strictly before the evidence time satisfies the guard.
  oracle.record_alert("no-failed-ops", at_ms(4000));
  violations = oracle.check(contract, reg, {"app-0"});
  for (const auto& v : violations) {
    EXPECT_NE(v.check, "detection-gap")
        << "gap reported despite an earlier alert";
  }

  // An alert at-or-after the evidence time does not count: "strictly
  // earlier" is the contract.
  sim::SloOracle late;
  late.record_get("app-0", "k0", "", at_ms(4900), at_ms(5000),
                  StatusCode::kUnavailable, 0);
  late.record_alert("no-failed-ops", at_ms(5000));
  violations = late.check(contract, reg, {"app-0"});
  bool late_gap = false;
  for (const auto& v : violations) {
    if (v.check == "detection-gap") late_gap = true;
  }
  EXPECT_TRUE(late_gap);
}

// -------------------------------------------------------------- attribution

TEST(AttributionReportTest, RenderNamesFaultsHotKeysAlertsAndWorstSpans) {
  sim::AttributionReport report;
  report.set_context("scenario", "grayprimary:slownode", 13, 0xabcdefull);
  report.set_window(at_ms(8000), at_ms(20000));
  report.add_violation("get-p99", "p99 over bound", at_ms(20000), 0x77);

  // One fault inside the window, one outside.
  sim::FaultEvent slow;
  slow.kind = sim::FaultEvent::Kind::kSlowNode;
  slow.node = "tiera-us-west";
  slow.slow_factor = 25.0;
  slow.at = at_ms(9000);
  slow.until = at_ms(18000);
  sim::FaultEvent stray;
  stray.kind = sim::FaultEvent::Kind::kCrash;
  stray.node = "tiera-eu-west";
  stray.at = at_ms(40000);
  stray.until = at_ms(42000);
  report.set_fault_timeline({slow, stray});

  report.set_scenario_timeline({{at_ms(4000), "drain tiera-asia-east"}});

  KeyStats::Config ks_config;
  ks_config.enabled = true;
  KeyStats stats(ks_config);
  for (int i = 0; i < 9; ++i) {
    stats.record_access("hot-0", "app-0", at_ms(9000 + i * 100), false);
  }
  stats.record_access("cold-1", "app-1", at_ms(9900), false);
  report.add_key_stats("tiera-us-west", stats, at_ms(10000));

  Tracer tracer(5);
  TimePoint clock = at_ms(9000);
  tracer.set_clock([&clock] { return clock; });
  const TraceContext slow_span = tracer.start_trace("client.get", "app-0");
  clock = at_ms(9400);
  tracer.end_span(slow_span);  // 400ms ok span
  const TraceContext err_span = tracer.start_trace("client.put", "app-1");
  clock = at_ms(9500);
  tracer.end_span(err_span, "UNAVAILABLE");
  report.set_tracer(tracer, /*keep=*/2);

  EXPECT_FALSE(report.empty());
  const std::string text = report.render_text();
  EXPECT_NE(text.find("ATTRIBUTION-REPORT suite=scenario "
                      "name=grayprimary:slownode seed=13"),
            std::string::npos);
  EXPECT_NE(text.find("[get-p99] p99 over bound"), std::string::npos);
  EXPECT_NE(text.find("slow-node node=tiera-us-west"), std::string::npos);
  // The out-of-window crash is summarized, not listed.
  EXPECT_EQ(text.find("crash node=tiera-eu-west"), std::string::npos);
  EXPECT_NE(text.find("(+1 applied fault(s) outside the window)"),
            std::string::npos);
  EXPECT_NE(text.find("drain tiera-asia-east"), std::string::npos);
  EXPECT_NE(text.find("key=hot-0"), std::string::npos);
  EXPECT_NE(text.find("tenant=app-0"), std::string::npos);
  // Error-status spans outrank longer ok spans.
  const size_t err_pos = text.find("[UNAVAILABLE] client.put");
  const size_t ok_pos = text.find("[ok] client.get");
  EXPECT_NE(err_pos, std::string::npos);
  EXPECT_NE(ok_pos, std::string::npos);
  EXPECT_LT(err_pos, ok_pos);
  EXPECT_NE(text.find("END-ATTRIBUTION-REPORT"), std::string::npos);

  const std::string json = report.render_json();
  EXPECT_NE(json.find("\"suite\":\"scenario\""), std::string::npos);
  EXPECT_NE(json.find("\"overlapping_faults\":[\"slow-node"),
            std::string::npos);
  EXPECT_NE(json.find("\"id\":\"hot-0\""), std::string::npos);
}

TEST(AttributionReportTest, WindowDefaultsToViolationEvidenceSpan) {
  sim::AttributionReport report;
  report.set_context("chaos", "eventual:crash", 3, 0x1);
  report.add_violation("no-failed-ops", "put failed", at_ms(10000), 0);

  sim::FaultEvent near_fault;
  near_fault.kind = sim::FaultEvent::Kind::kCrash;
  near_fault.node = "n1";
  near_fault.at = at_ms(11000);
  near_fault.until = at_ms(12000);
  sim::FaultEvent far_fault;
  far_fault.kind = sim::FaultEvent::Kind::kCrash;
  far_fault.node = "n2";
  far_fault.at = at_ms(30000);
  far_fault.until = at_ms(31000);
  report.set_fault_timeline({near_fault, far_fault});

  // Evidence at 10s: the implied window is [8s, 12s], so the 11s crash
  // overlaps and the 30s one does not.
  const std::string text = report.render_text();
  EXPECT_NE(text.find("window=[8000000us,12000000us]"), std::string::npos);
  EXPECT_NE(text.find("crash node=n1"), std::string::npos);
  EXPECT_EQ(text.find("crash node=n2"), std::string::npos);
}

TEST(AttributionReportTest, EmptyKeyStatsAndDisabledSketchesAreSkipped) {
  sim::AttributionReport report;
  KeyStats disabled;
  report.add_key_stats("NYC", disabled, at_ms(100));
  KeyStats::Config on;
  on.enabled = true;
  KeyStats enabled_but_empty(on);
  report.add_key_stats("LA", enabled_but_empty, at_ms(100));
  const std::string text = report.render_text();
  EXPECT_EQ(text.find("NYC"), std::string::npos);
  EXPECT_EQ(text.find("LA"), std::string::npos);
}

}  // namespace
}  // namespace wiera::obs
