// Tests for the YCSB workload generator and client driver.
#include <gtest/gtest.h>

#include <map>

#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "wiera/controller.h"
#include "ycsb/ycsb.h"

namespace wiera::ycsb {
namespace {

// ------------------------------------------------------------ generators

TEST(ZipfianTest, InRangeAndSkewed) {
  ZipfianGenerator gen(1000);
  Rng rng(1);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = gen.next(rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank 0 should dominate: YCSB zipfian(0.99) gives item 0 roughly 10%+.
  EXPECT_GT(counts[0], n / 20);
  // And far more than a mid-rank item.
  EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(ZipfianTest, Deterministic) {
  ZipfianGenerator gen1(100), gen2(100);
  Rng a(5), b(5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(gen1.next(a), gen2.next(b));
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator gen(1000);
  Rng rng(1);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[gen.next(rng)]++;
  // The hottest key should not be key 0 systematically (it's scrambled) —
  // just check there IS a dominant key and values stay in range.
  int max_count = 0;
  uint64_t max_key = 0;
  for (auto& [k, c] : counts) {
    ASSERT_LT(k, 1000u);
    if (c > max_count) {
      max_count = c;
      max_key = k;
    }
  }
  EXPECT_GT(max_count, 5000);
  // With FNV scrambling the hot key is essentially arbitrary.
  (void)max_key;
}

TEST(LatestTest, PrefersRecentKeys) {
  LatestGenerator gen(1000);
  Rng rng(1);
  int high = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = gen.next(rng);
    ASSERT_LT(v, 1000u);
    if (v >= 900) high++;
  }
  EXPECT_GT(high, n / 2);  // most picks land in the newest 10%
  // After inserts, the newest keys shift.
  gen.observe_insert(2000);
  bool saw_new = false;
  for (int i = 0; i < 1000; ++i) {
    if (gen.next(rng) >= 1000) saw_new = true;
  }
  EXPECT_TRUE(saw_new);
}

// ------------------------------------------------------------ workloads

TEST(WorkloadSpecTest, CoreMixes) {
  EXPECT_DOUBLE_EQ(WorkloadSpec::a().read_proportion, 0.5);
  EXPECT_DOUBLE_EQ(WorkloadSpec::a().update_proportion, 0.5);
  EXPECT_DOUBLE_EQ(WorkloadSpec::b().read_proportion, 0.95);
  EXPECT_DOUBLE_EQ(WorkloadSpec::c().read_proportion, 1.0);
  EXPECT_EQ(WorkloadSpec::d().distribution, Distribution::kLatest);
  EXPECT_DOUBLE_EQ(WorkloadSpec::e().scan_proportion, 0.95);
  EXPECT_DOUBLE_EQ(WorkloadSpec::f().rmw_proportion, 0.5);
}

TEST(WorkloadGeneratorTest, MixMatchesProportions) {
  WorkloadSpec spec = WorkloadSpec::a();
  spec.record_count = 100;
  WorkloadGenerator gen(spec, 42);
  int reads = 0, updates = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto op = gen.next();
    if (op.type == OpType::kRead) reads++;
    if (op.type == OpType::kUpdate) updates++;
  }
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(updates) / n, 0.5, 0.02);
}

TEST(WorkloadGeneratorTest, InsertsExtendKeyspace) {
  WorkloadSpec spec = WorkloadSpec::d();
  spec.record_count = 100;
  WorkloadGenerator gen(spec, 42);
  bool saw_new_key = false;
  for (int i = 0; i < 2000; ++i) {
    auto op = gen.next();
    if (op.type == OpType::kInsert) {
      EXPECT_EQ(op.key.rfind("user", 0), 0u);
      const int64_t id = std::stoll(op.key.substr(4));
      if (id >= 100) saw_new_key = true;
    }
  }
  EXPECT_TRUE(saw_new_key);
}

// ------------------------------------------------------------ driver

struct Cluster {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  geo::WieraController controller;
  std::vector<std::unique_ptr<geo::TieraServer>> servers;

  Cluster()
      : sim(1),
        network(sim, make_topology()),
        controller(sim, network, registry,
                   {"wiera-controller", sec(1), 0}) {
    for (const char* node : {"tiera-us-west", "tiera-us-east"}) {
      servers.push_back(std::make_unique<geo::TieraServer>(
          sim, network, registry, node));
      controller.register_server(servers.back().get());
    }
  }

  static net::Topology make_topology() {
    net::Topology topo;
    topo.add_datacenter("aws-us-east", net::Provider::kAws, "us-east");
    topo.add_datacenter("aws-us-west", net::Provider::kAws, "us-west");
    topo.set_rtt("aws-us-east", "aws-us-west", msec(70));
    topo.set_jitter_fraction(0.0);
    topo.add_node("wiera-controller", "aws-us-east");
    topo.add_node("tiera-us-west", "aws-us-west");
    topo.add_node("tiera-us-east", "aws-us-east");
    topo.add_node("client", "aws-us-west");
    return topo;
  }
};

TEST(ClientDriverTest, LoadAndRunAgainstWiera) {
  Cluster cluster;
  geo::WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(R"(
Wiera TwoRegionEventual() {
   Region1 = {name:LowLatencyInstance, region:US-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region2 = {name:LowLatencyInstance, region:US-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   event(insert.into) : response {
      store(what:insert.object, to:local_instance)
      queue(what:insert.object, to:all_regions)
   }
}
)")).value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();

  geo::WieraClient client(cluster.sim, cluster.network, cluster.registry,
                            "ycsb", "client", *peers);
  WorkloadSpec spec = WorkloadSpec::a();
  spec.record_count = 50;
  spec.value_size = 512;
  ClientDriver driver(cluster.sim, client, spec, 7);

  int64_t writes_seen = 0, reads_seen = 0;
  bool done = false;
  auto body = [](ClientDriver& d, int64_t& w, int64_t& r,
                 bool& flag) -> sim::Task<void> {
    Status st = co_await d.load();
    EXPECT_TRUE(st.ok()) << st.to_string();
    ClientDriver::Options opts;
    opts.operations = 200;
    opts.on_write = [&w](const std::string&, int64_t) { w++; };
    opts.on_read = [&r](const std::string&, int64_t) { r++; };
    st = co_await d.run(opts);
    EXPECT_TRUE(st.ok());
    flag = true;
  };
  cluster.sim.spawn(body(driver, writes_seen, reads_seen, done));
  cluster.sim.run_until(TimePoint(minutes(30).us()));
  ASSERT_TRUE(done);

  EXPECT_EQ(driver.ops_completed(), 200);
  EXPECT_EQ(driver.errors(), 0);
  EXPECT_GT(reads_seen, 50);
  EXPECT_GT(writes_seen, 50);
  // Eventual consistency at the local replica: ops are fast.
  EXPECT_LT(driver.read_latency().p95().ms(), 10.0);
  EXPECT_LT(driver.update_latency().p95().ms(), 10.0);
}

TEST(ClientDriverTest, ShouldStopAborts) {
  Cluster cluster;
  geo::WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(R"(
Wiera OneRegion() {
   Region1 = {name:LowLatencyInstance, region:US-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   event(insert.into) : response {
      store(what:insert.object, to:local_instance)
      queue(what:insert.object, to:all_regions)
   }
}
)")).value();
  options.local_params["t"] = policy::Value::duration_of(sec(60));
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());
  geo::WieraClient client(cluster.sim, cluster.network, cluster.registry,
                            "ycsb", "client", *peers);
  WorkloadSpec spec = WorkloadSpec::c();
  spec.record_count = 10;
  ClientDriver driver(cluster.sim, client, spec, 7);
  bool done = false;
  auto body = [](ClientDriver& d, bool& flag) -> sim::Task<void> {
    Status st = co_await d.load();
    EXPECT_TRUE(st.ok());
    ClientDriver::Options opts;
    opts.operations = 1000000;
    int count = 0;
    opts.should_stop = [&count]() mutable { return ++count > 50; };
    st = co_await d.run(opts);
    EXPECT_TRUE(st.ok());
    flag = true;
  };
  cluster.sim.spawn(body(driver, done));
  cluster.sim.run_until(TimePoint(minutes(30).us()));
  ASSERT_TRUE(done);
  EXPECT_LE(driver.ops_completed(), 51);
}

}  // namespace
}  // namespace wiera::ycsb
