// Unit tests for src/common: Status/Result, time types, RNG, histogram,
// blobs, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/breaker.h"
#include "common/bytes.h"
#include "common/context.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/time.h"
#include "common/units.h"

namespace wiera {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = not_found("key k1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "key k1");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: key k1");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  for (const Status& s :
       {not_found("x"), already_exists("x"), invalid_argument("x"),
        failed_precondition("x"), out_of_range("x"), resource_exhausted("x"),
        unavailable("x"), deadline_exceeded("x"), aborted("x"),
        unimplemented("x"), internal_error("x")}) {
    EXPECT_FALSE(s.ok());
    codes.insert(s.code());
  }
  EXPECT_EQ(codes.size(), 11u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = unavailable("node down");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ---------------------------------------------------------------- Time

TEST(TimeTest, DurationArithmetic) {
  EXPECT_EQ((msec(5) + msec(7)).us(), 12000);
  EXPECT_EQ((sec(1) - msec(250)).ms(), 750.0);
  EXPECT_EQ((msec(10) * 2.5).us(), 25000);
  EXPECT_LT(msec(1), msec(2));
  EXPECT_EQ(hoursd(120).hours(), 120.0);
}

TEST(TimeTest, TimePointArithmetic) {
  TimePoint t0 = TimePoint::origin();
  TimePoint t1 = t0 + sec(3);
  EXPECT_EQ((t1 - t0).seconds(), 3.0);
  EXPECT_EQ((t1 - msec(500)).us(), 2500000);
  EXPECT_GT(t1, t0);
}

TEST(TimeTest, ToStringPicksSensibleUnit) {
  EXPECT_EQ(usec(500).to_string(), "500us");
  EXPECT_EQ(msec(12.5).to_string(), "12.5ms");
  EXPECT_EQ(sec(3).to_string(), "3s");
}

// ---------------------------------------------------------------- RNG

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.gaussian(10.0, 2.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  // Child stream should not track the parent's subsequent outputs.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean().us(), 0);
  EXPECT_EQ(h.percentile(0.5).us(), 0);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.record(msec(10));
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.mean().us(), 10000);
  EXPECT_EQ(h.min().us(), 10000);
  EXPECT_EQ(h.max().us(), 10000);
  EXPECT_EQ(h.p99().us(), 10000);  // clamped to max
}

TEST(HistogramTest, PercentileApproximation) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(usec(i * 100));  // 0.1ms..100ms
  // p50 ~ 50ms; log-bucket approximation error must stay within ~12%.
  EXPECT_NEAR(h.p50().us(), 50000, 6000);
  EXPECT_NEAR(h.p95().us(), 95000, 12000);
  EXPECT_EQ(h.max().us(), 100000);
}

TEST(HistogramTest, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.record(msec(1));
  a.record(msec(2));
  b.record(msec(100));
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.max().us(), 100000);
  EXPECT_EQ(a.min().us(), 1000);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.record(msec(5));
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max().us(), 0);
}

TEST(HistogramTest, PercentileEdgeCasesEmpty) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.0).us(), 0);
  EXPECT_EQ(h.percentile(1.0).us(), 0);
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_EQ(h.percentile(-1.0).us(), 0);
  EXPECT_EQ(h.percentile(2.0).us(), 0);
}

TEST(HistogramTest, PercentileEdgeCasesSingleSample) {
  LatencyHistogram h;
  h.record(msec(50));
  // With one sample every percentile is that sample — including p0, which
  // must not report bucket 0's 1µs upper bound.
  EXPECT_EQ(h.percentile(0.0).us(), 50000);
  EXPECT_EQ(h.percentile(0.5).us(), 50000);
  EXPECT_EQ(h.percentile(1.0).us(), 50000);
}

TEST(HistogramTest, PercentileBoundedByMinAndMax) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(msec(10 + i));  // 11ms..110ms
  EXPECT_GE(h.percentile(0.0).us(), h.min().us());
  EXPECT_EQ(h.percentile(1.0).us(), h.max().us());
  EXPECT_LE(h.p50().us(), h.max().us());
  EXPECT_GE(h.p50().us(), h.min().us());
}

// ---------------------------------------------------------------- Context

TEST(ContextTest, DefaultHasNoDeadlineAndNeverCancels) {
  Context ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.expired(TimePoint(1) + sec(1000000)));
  EXPECT_EQ(ctx.remaining(TimePoint(0)), Duration::max());
  ctx.cancel();  // no-op without a cancel state
  EXPECT_FALSE(ctx.cancelled());
}

TEST(ContextTest, DeadlineExpiryAndRemaining) {
  Context ctx = Context::with_deadline(TimePoint(0) + msec(100));
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_FALSE(ctx.expired(TimePoint(0) + msec(99)));
  EXPECT_TRUE(ctx.expired(TimePoint(0) + msec(100)));
  EXPECT_EQ(ctx.remaining(TimePoint(0) + msec(40)), msec(60));
  EXPECT_EQ(ctx.remaining(TimePoint(0) + msec(150)), Duration::zero());
}

TEST(ContextTest, CancellationIsSharedAcrossCopies) {
  Context ctx = Context::with_deadline(TimePoint(0) + sec(1));
  Context copy = ctx;
  copy.cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_TRUE(copy.cancelled());
}

// ------------------------------------------------------------ RetryBudget

TEST(RetryBudgetTest, DisabledBudgetAlwaysAllows) {
  RetryBudget b;
  EXPECT_FALSE(b.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(b.try_spend(TimePoint(0)));
  EXPECT_EQ(b.denied(), 0);
}

TEST(RetryBudgetTest, DrainsToDenialAndRefillsOverTime) {
  RetryBudget b(/*tokens_per_sec=*/1.0, /*capacity=*/3.0);
  TimePoint t(0);
  EXPECT_TRUE(b.try_spend(t));
  EXPECT_TRUE(b.try_spend(t));
  EXPECT_TRUE(b.try_spend(t));
  EXPECT_FALSE(b.try_spend(t));  // bucket dry
  EXPECT_EQ(b.denied(), 1);
  // One token refills after one second.
  EXPECT_TRUE(b.try_spend(t + sec(1)));
  EXPECT_FALSE(b.try_spend(t + sec(1)));
  EXPECT_EQ(b.denied(), 2);
}

TEST(RetryBudgetTest, RefillCapsAtCapacity) {
  RetryBudget b(/*tokens_per_sec=*/10.0, /*capacity=*/2.0);
  TimePoint t(0);
  // A long idle stretch must not bank more than `capacity` tokens.
  EXPECT_TRUE(b.try_spend(t + sec(100)));
  EXPECT_TRUE(b.try_spend(t + sec(100)));
  EXPECT_FALSE(b.try_spend(t + sec(100)));
}

// ---------------------------------------------------------- CircuitBreaker

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker brk(CircuitBreaker::Options{.failure_threshold = 3,
                                             .open_for = sec(1)});
  TimePoint t(0);
  EXPECT_TRUE(brk.allow(t));
  brk.record_failure(t);
  brk.record_failure(t);
  EXPECT_EQ(brk.state(), CircuitBreaker::State::kClosed);
  brk.record_failure(t);
  EXPECT_EQ(brk.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(brk.allow(t + msec(500)));  // still open
  EXPECT_EQ(brk.opens(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsFailureStreak) {
  CircuitBreaker brk(CircuitBreaker::Options{.failure_threshold = 2,
                                             .open_for = sec(1)});
  TimePoint t(0);
  brk.record_failure(t);
  brk.record_success();
  brk.record_failure(t);
  EXPECT_EQ(brk.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbe) {
  CircuitBreaker brk(CircuitBreaker::Options{.failure_threshold = 1,
                                             .open_for = sec(1)});
  TimePoint t(0);
  brk.record_failure(t);
  ASSERT_EQ(brk.state(), CircuitBreaker::State::kOpen);
  // After open_for, exactly one probe goes through.
  EXPECT_TRUE(brk.allow(t + sec(1)));
  EXPECT_EQ(brk.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(brk.allow(t + sec(1)));  // second caller keeps failing fast
  brk.record_success();
  EXPECT_EQ(brk.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(brk.allow(t + sec(1)));
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  CircuitBreaker brk(CircuitBreaker::Options{.failure_threshold = 1,
                                             .open_for = sec(1)});
  TimePoint t(0);
  brk.record_failure(t);
  EXPECT_TRUE(brk.allow(t + sec(1)));  // probe
  brk.record_failure(t + sec(1));
  EXPECT_EQ(brk.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(brk.allow(t + sec(1) + msec(500)));
  // The re-open restarts the open_for clock from the probe failure.
  EXPECT_TRUE(brk.allow(t + sec(2)));
  EXPECT_EQ(brk.opens(), 2);
}

TEST(CircuitBreakerTest, TransitionHookSeesEveryStateChange) {
  CircuitBreaker brk(CircuitBreaker::Options{.failure_threshold = 1,
                                             .open_for = sec(1)});
  std::vector<std::pair<CircuitBreaker::State, CircuitBreaker::State>> seen;
  brk.set_transition_hook([&](CircuitBreaker::State from,
                              CircuitBreaker::State to) {
    seen.emplace_back(from, to);
  });
  TimePoint t(0);
  brk.record_failure(t);            // closed -> open
  EXPECT_TRUE(brk.allow(t + sec(1)));  // open -> half-open
  brk.record_success();             // half-open -> closed
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].second, CircuitBreaker::State::kOpen);
  EXPECT_EQ(seen[1].second, CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(seen[2].second, CircuitBreaker::State::kClosed);
}

TEST(TimeSeriesTest, RecordsInOrder) {
  TimeSeries ts;
  ts.record(TimePoint(100), 1.5);
  ts.record(TimePoint(200), 2.5);
  ASSERT_EQ(ts.samples().size(), 2u);
  EXPECT_EQ(ts.samples()[0].time.us(), 100);
  EXPECT_EQ(ts.samples()[1].value, 2.5);
}

// ---------------------------------------------------------------- Bytes

TEST(BlobTest, EmptyBlob) {
  Blob b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b, Blob());
}

TEST(BlobTest, FromString) {
  Blob b("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.to_string(), "hello");
}

TEST(BlobTest, ZerosHasRequestedSize) {
  Blob b = Blob::zeros(4096);
  EXPECT_EQ(b.size(), 4096u);
  EXPECT_EQ(b.data()[0], 0);
  EXPECT_EQ(b.data()[4095], 0);
}

TEST(BlobTest, EqualityByContent) {
  EXPECT_EQ(Blob("abc"), Blob("abc"));
  EXPECT_FALSE(Blob("abc") == Blob("abd"));
  EXPECT_FALSE(Blob("abc") == Blob("ab"));
}

TEST(BlobTest, CopyShares) {
  Blob a("payload");
  Blob b = a;  // shares the buffer
  EXPECT_EQ(a.data(), b.data());
}

TEST(BytesTest, Fnv1aStable) {
  // Known FNV-1a 64 vectors.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_NE(fnv1a64("abc"), fnv1a64("acb"));
}

// ---------------------------------------------------------------- Units

TEST(UnitsTest, SizesAndConversions) {
  EXPECT_EQ(KiB, 1024);
  EXPECT_EQ(GiB, 1073741824LL);
  EXPECT_EQ(bytes_to_gb(GB), 1.0);
  EXPECT_NEAR(bytes_to_gb(10 * TiB), 10995.1, 0.1);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringsTest, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("memcached", "mem"));
  EXPECT_FALSE(starts_with("mem", "memcached"));
  EXPECT_EQ(to_lower("EBS-SSD"), "ebs-ssd");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
}

}  // namespace
}  // namespace wiera
