// Tests for the Table 4 pricing model and §5.3 savings arithmetic.
#include <gtest/gtest.h>

#include "common/units.h"
#include "cost/cost_model.h"
#include "sim/simulation.h"

namespace wiera::cost {
namespace {

TEST(PricingTest, Table4Values) {
  EXPECT_DOUBLE_EQ(pricing_for(store::TierKind::kBlockSsd).storage_gb_month, 0.10);
  EXPECT_DOUBLE_EQ(pricing_for(store::TierKind::kBlockHdd).storage_gb_month, 0.05);
  EXPECT_DOUBLE_EQ(pricing_for(store::TierKind::kObjectS3).storage_gb_month, 0.03);
  EXPECT_DOUBLE_EQ(pricing_for(store::TierKind::kObjectS3IA).storage_gb_month, 0.0125);
  EXPECT_DOUBLE_EQ(pricing_for(store::TierKind::kObjectS3).put_per_10k, 0.05);
  EXPECT_DOUBLE_EQ(pricing_for(store::TierKind::kObjectS3IA).get_per_10k, 0.01);
  EXPECT_DOUBLE_EQ(pricing_for(store::TierKind::kBlockSsd).put_per_10k, 0.0);
}

TEST(PricingTest, StorageCostScalesLinearly) {
  EXPECT_NEAR(CostModel::storage_cost_per_month(store::TierKind::kBlockSsd,
                                                1000 * GB),
              100.0, 1e-9);
  EXPECT_NEAR(CostModel::storage_cost_per_month(store::TierKind::kObjectS3IA,
                                                1000 * GB),
              12.5, 1e-9);
}

TEST(PricingTest, RequestCost) {
  // 100k S3 puts = $0.50; 100k S3 gets = $0.04.
  EXPECT_NEAR(CostModel::request_cost(store::TierKind::kObjectS3, 100000, 0),
              0.5, 1e-9);
  EXPECT_NEAR(CostModel::request_cost(store::TierKind::kObjectS3, 0, 100000),
              0.04, 1e-9);
  EXPECT_DOUBLE_EQ(
      CostModel::request_cost(store::TierKind::kBlockSsd, 1000000, 1000000),
      0.0);
}

TEST(PricingTest, NetworkCost) {
  EXPECT_NEAR(CostModel::egress_cost_internet(10 * GB), 0.9, 1e-9);
  EXPECT_NEAR(CostModel::egress_cost_cross_dc(10 * GB), 0.2, 1e-9);
}

TEST(ColdSavingsTest, PaperExampleMagnitudes) {
  // §5.3: 10TB per instance, 80% cold. Paper: saves ~$700/month (SSD) and
  // ~$300/month (HDD) per instance; centralizing saves ~$300 more across
  // 4 regions ($100 per non-central region).
  const int64_t ten_tb = 10000 * GB;  // paper uses decimal TB pricing math
  ColdDataSavings s = cold_data_savings(ten_tb, 0.8, 4);
  EXPECT_NEAR(s.saving_per_instance_ssd, 700.0, 5.0);
  EXPECT_NEAR(s.saving_per_instance_hdd, 300.0, 5.0);
  EXPECT_NEAR(s.saving_centralized_extra, 300.0, 5.0);
  // Tiered configs are strictly cheaper.
  EXPECT_LT(s.monthly_cost_tiered_ssd, s.monthly_cost_hot_ssd);
  EXPECT_LT(s.monthly_cost_tiered_hdd, s.monthly_cost_hot_hdd);
}

TEST(ColdSavingsTest, NoColdDataNoSavings) {
  ColdDataSavings s = cold_data_savings(1000 * GB, 0.0, 3);
  EXPECT_NEAR(s.saving_per_instance_ssd, 0.0, 1e-9);
  EXPECT_NEAR(s.saving_centralized_extra, 0.0, 1e-9);
}

TEST(BillTierTest, CombinesStorageAndRequests) {
  sim::Simulation sim;
  store::TierSpec spec;
  spec.name = "s3";
  spec.kind = store::TierKind::kObjectS3;
  spec.jitter_fraction = 0;
  auto tier = store::make_tier(sim, spec);
  bool done = false;
  auto body = [](store::StorageTier& t, bool& flag) -> sim::Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await t.put("k" + std::to_string(i), Blob(Bytes(1 * GB / 100, 0)));
    }
    for (int i = 0; i < 200; ++i) {
      co_await t.get("k" + std::to_string(i % 100));
    }
    flag = true;
  };
  sim.spawn(body(*tier, done));
  sim.run();
  ASSERT_TRUE(done);
  const double bill = CostModel::bill_tier(*tier, 1.0);
  // ~1GB stored (~$0.03) + 100 puts (~$0.0005) + 200 gets (~$0.00008).
  EXPECT_NEAR(bill, 0.03 + 0.0005 + 0.00008, 0.002);
}

TEST(BillTrafficTest, CrossDcOnly) {
  net::TrafficStats traffic;
  traffic.dc_pair_bytes[{"a", "b"}] = 5 * GB;
  traffic.dc_pair_bytes[{"a", "a"}] = 50 * GB;  // intra-DC is free
  EXPECT_NEAR(CostModel::bill_traffic(traffic), 0.1, 1e-9);
}

}  // namespace
}  // namespace wiera::cost
