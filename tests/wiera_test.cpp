// Integration tests for the Wiera layer: consistency protocols, dynamic
// policy switching, primary migration, failover, remote tiers, and the
// centralized cold-data policy.
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "wiera/client.h"
#include "wiera/controller.h"
#include "wiera/health.h"

namespace wiera::geo {
namespace {

// Four-region AWS deployment matching the paper's §5 setup, with the Wiera
// controller (and its lock service) in US East.
struct Cluster {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  WieraController controller;
  std::vector<std::unique_ptr<TieraServer>> servers;

  explicit Cluster(uint64_t seed = 1)
      : sim(seed),
        network(sim, make_topology()),
        controller(sim, network, registry,
                   WieraController::Config{"wiera-controller", sec(1), 0}) {
    for (const char* node :
         {"tiera-us-west", "tiera-us-east", "tiera-eu-west",
          "tiera-asia-east"}) {
      servers.push_back(
          std::make_unique<TieraServer>(sim, network, registry, node));
      controller.register_server(servers.back().get());
    }
  }

  static net::Topology make_topology() {
    net::Topology topo = net::Topology::paper_default();
    topo.set_jitter_fraction(0.0);
    topo.add_node("wiera-controller", "aws-us-east");
    topo.add_node("tiera-us-west", "aws-us-west");
    topo.add_node("tiera-us-east", "aws-us-east");
    topo.add_node("tiera-eu-west", "aws-eu-west");
    topo.add_node("tiera-asia-east", "aws-asia-east");
    topo.add_node("client-us-west", "aws-us-west");
    topo.add_node("client-eu-west", "aws-eu-west");
    topo.add_node("client-asia-east", "aws-asia-east");
    return topo;
  }

  WieraController::StartOptions options_for(std::string_view policy_src) {
    WieraController::StartOptions options;
    auto doc = policy::parse_policy(policy_src);
    EXPECT_TRUE(doc.ok()) << doc.status().to_string();
    options.global = std::move(doc).value();
    options.local_params["t"] =
        policy::Value::duration_of(sec(10));
    options.customize = [](WieraPeer::Config& config) {
      config.local.tier_tweak = [](const std::string&, store::TierSpec& spec) {
        spec.jitter_fraction = 0;
      };
    };
    return options;
  }

  // Run `body` then stop the loop (timers would otherwise spin forever).
  template <typename F>
  void run(F&& body) {
    bool done = false;
    auto wrapper = [](sim::Simulation& s, F body, bool& flag) -> sim::Task<void> {
      co_await body();
      flag = true;
      s.stop();
    };
    sim.spawn(wrapper(sim, std::forward<F>(body), done));
    sim.run();
    ASSERT_TRUE(done);
  }
};

// ------------------------------------------------------------ mode derivation

TEST(ConsistencyModeTest, DerivedFromBuiltinPolicies) {
  auto mp = policy::parse_policy(policy::builtin::multi_primaries_consistency());
  EXPECT_EQ(derive_consistency_mode(*mp).value(),
            ConsistencyMode::kMultiPrimaries);
  auto pb = policy::parse_policy(policy::builtin::primary_backup_consistency());
  EXPECT_EQ(derive_consistency_mode(*pb).value(),
            ConsistencyMode::kPrimaryBackupSync);
  auto ev = policy::parse_policy(policy::builtin::eventual_consistency());
  EXPECT_EQ(derive_consistency_mode(*ev).value(),
            ConsistencyMode::kEventual);
  auto sc = policy::parse_policy(policy::builtin::simpler_consistency());
  EXPECT_EQ(derive_consistency_mode(*sc).value(),
            ConsistencyMode::kPrimaryBackupSync);
}

TEST(ConsistencyModeTest, NamesRoundTrip) {
  for (ConsistencyMode mode :
       {ConsistencyMode::kMultiPrimaries, ConsistencyMode::kPrimaryBackupSync,
        ConsistencyMode::kPrimaryBackupAsync, ConsistencyMode::kEventual}) {
    auto parsed = consistency_mode_from_name(consistency_mode_name(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(consistency_mode_from_name("Quantum").ok());
}

// ------------------------------------------------------------ WUI

TEST(WieraControllerTest, StartStopGetInstances) {
  Cluster cluster;
  auto result = cluster.controller.start_instances(
      "w1",
      cluster.options_for(policy::builtin::multi_primaries_consistency()));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->size(), 4u);

  auto listed = cluster.controller.get_instances("w1");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, *result);

  // Duplicate id rejected.
  auto dup = cluster.controller.start_instances(
      "w1",
      cluster.options_for(policy::builtin::multi_primaries_consistency()));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);

  EXPECT_TRUE(cluster.controller.stop_instances("w1").ok());
  EXPECT_FALSE(cluster.controller.get_instances("w1").ok());
  EXPECT_EQ(cluster.controller.stop_instances("w1").code(),
            StatusCode::kNotFound);
}

// ------------------------------------------------------------ MultiPrimaries

TEST(MultiPrimariesTest, PutReplicatesEverywhereUnderGlobalLock) {
  Cluster cluster;
  auto peers = cluster.controller.start_instances(
      "w1",
      cluster.options_for(policy::builtin::multi_primaries_consistency()));
  ASSERT_TRUE(peers.ok());

  WieraClient client(cluster.sim, cluster.network, cluster.registry,
                     "app-1", "client-us-west", *peers);
  EXPECT_EQ(client.closest_peer(), "tiera-us-west");

  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await client.put("k", Blob("v"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
    EXPECT_EQ(put->version, 1);
  });

  // Every peer holds the object locally.
  for (const std::string& id : *peers) {
    WieraPeer* peer = cluster.controller.peer(id);
    ASSERT_NE(peer, nullptr);
    EXPECT_NE(peer->local().meta().find("k"), nullptr) << id;
  }
  // Put latency includes the lock round trip (US-West <-> US-East = 70ms)
  // plus the synchronous broadcast; the paper reports ~400ms from US West.
  const auto put_ms = cluster.controller.peer("tiera-us-west")
                          ->put_latency().mean().ms();
  EXPECT_GT(put_ms, 200.0);
  EXPECT_LT(put_ms, 800.0);
}

TEST(MultiPrimariesTest, ConcurrentWritersSerializedByLock) {
  Cluster cluster;
  auto peers = cluster.controller.start_instances(
      "w1",
      cluster.options_for(policy::builtin::multi_primaries_consistency()));
  ASSERT_TRUE(peers.ok());

  WieraClient west(cluster.sim, cluster.network, cluster.registry, "app-w",
                   "client-us-west", *peers);
  WieraClient eu(cluster.sim, cluster.network, cluster.registry, "app-e",
                 "client-eu-west", *peers);

  int completed = 0;
  auto writer = [](WieraClient& c, int n, int& done) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      auto r = co_await c.put("shared", Blob("x"));
      EXPECT_TRUE(r.ok());
    }
    done++;
  };
  cluster.sim.spawn(writer(west, 3, completed));
  cluster.sim.spawn(writer(eu, 3, completed));
  cluster.sim.run_until(TimePoint(sec(30).us()));
  EXPECT_EQ(completed, 2);

  // All six writes serialized: every peer converged to version 6.
  for (const std::string& id : *peers) {
    WieraPeer* peer = cluster.controller.peer(id);
    EXPECT_EQ(peer->local().meta().find("shared")->latest_version(), 6) << id;
  }
}

// ------------------------------------------------------------ PrimaryBackup

TEST(PrimaryBackupTest, NonPrimaryForwardsToPrimary) {
  Cluster cluster;
  auto peers = cluster.controller.start_instances(
      "w1",
      cluster.options_for(policy::builtin::primary_backup_consistency()));
  ASSERT_TRUE(peers.ok());
  EXPECT_EQ(cluster.controller.current_primary("w1"), "tiera-us-west");

  // Client near EU-West: its put lands on the EU peer and is forwarded.
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-eu-west", *peers);
  EXPECT_EQ(client.closest_peer(), "tiera-eu-west");

  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await client.put("k", Blob("v"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
  });

  WieraPeer* primary = cluster.controller.peer("tiera-us-west");
  EXPECT_EQ(primary->forwarded_puts_from("tiera-eu-west"), 1);
  // Synchronous copy: replicas hold the data.
  EXPECT_NE(cluster.controller.peer("tiera-us-east")->local().meta().find("k"),
            nullptr);
}

TEST(PrimaryBackupTest, ReplicaServesConsistentRead) {
  Cluster cluster;
  auto peers = cluster.controller.start_instances(
      "w1",
      cluster.options_for(policy::builtin::primary_backup_consistency()));
  ASSERT_TRUE(peers.ok());

  WieraClient eu(cluster.sim, cluster.network, cluster.registry, "app",
                 "client-eu-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    co_await eu.put("k", Blob("v1"));
    auto got = co_await eu.get("k");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got->value.to_string(), "v1");
    // Served by the local (EU) replica, not the primary.
    EXPECT_EQ(got->served_by, "tiera-eu-west");
  });
}

// ------------------------------------------------------------ Eventual

TEST(EventualTest, LocalPutIsFastAndConverges) {
  Cluster cluster;
  auto options =
      cluster.options_for(policy::builtin::eventual_consistency());
  options.queue_flush_interval = msec(50);
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-asia-east", *peers);
  int64_t put_done_us = 0;
  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await client.put("k", Blob("v"));
    EXPECT_TRUE(put.ok());
    put_done_us = cluster.sim.now().us();
  });
  // Client-perceived latency: same-DC RTT + local memory write, well under
  // 10 ms (paper: <10ms for eventual).
  EXPECT_LT(put_done_us, 10000);

  // Asia peer has it; far peers not yet.
  EXPECT_NE(
      cluster.controller.peer("tiera-asia-east")->local().meta().find("k"),
      nullptr);

  // After a flush interval plus WAN latency, everyone converged.
  cluster.sim.run_until(TimePoint(sec(2).us()));
  for (const std::string& id : *peers) {
    EXPECT_NE(cluster.controller.peer(id)->local().meta().find("k"), nullptr)
        << id;
  }
}

TEST(EventualTest, ConcurrentWritesConvergeLww) {
  Cluster cluster;
  auto options =
      cluster.options_for(policy::builtin::eventual_consistency());
  options.queue_flush_interval = msec(50);
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());

  WieraClient west(cluster.sim, cluster.network, cluster.registry, "a",
                   "client-us-west", *peers);
  WieraClient asia(cluster.sim, cluster.network, cluster.registry, "b",
                   "client-asia-east", *peers);

  // Both write the same key concurrently (same version number at both
  // replicas), then the system must converge to a single winner.
  auto writer = [](WieraClient& c, std::string v) -> sim::Task<void> {
    auto r = co_await c.put("conflict", Blob(std::move(v)));
    EXPECT_TRUE(r.ok());
  };
  cluster.sim.spawn(writer(west, "from-west"));
  cluster.sim.spawn(writer(asia, "from-asia"));
  cluster.sim.run_until(TimePoint(sec(5).us()));

  std::string winner;
  for (const std::string& id : *peers) {
    const auto* meta =
        cluster.controller.peer(id)->local().meta().find("conflict");
    ASSERT_NE(meta, nullptr) << id;
    const auto* latest = meta->latest();
    if (winner.empty()) winner = latest->origin;
    EXPECT_EQ(latest->origin, winner) << id;  // same winner everywhere
  }
}

// ------------------------------------------------------------ change consistency

TEST(ChangeConsistencyTest, SwitchesAllPeersAndCountsChanges) {
  Cluster cluster;
  auto peers = cluster.controller.start_instances(
      "w1",
      cluster.options_for(policy::builtin::multi_primaries_consistency()));
  ASSERT_TRUE(peers.ok());
  EXPECT_EQ(cluster.controller.current_mode("w1"),
            ConsistencyMode::kMultiPrimaries);

  cluster.run([&]() -> sim::Task<void> {
    Status st = co_await cluster.controller.change_consistency(
        "w1", ConsistencyMode::kEventual);
    EXPECT_TRUE(st.ok()) << st.to_string();
  });
  EXPECT_EQ(cluster.controller.current_mode("w1"),
            ConsistencyMode::kEventual);
  EXPECT_EQ(cluster.controller.consistency_changes(), 1);
  for (const std::string& id : *peers) {
    EXPECT_EQ(cluster.controller.peer(id)->mode(),
              ConsistencyMode::kEventual);
  }
  // Idempotent: switching to the current mode is a no-op.
  cluster.run([&]() -> sim::Task<void> {
    Status st = co_await cluster.controller.change_consistency(
        "w1", ConsistencyMode::kEventual);
    EXPECT_TRUE(st.ok());
  });
  EXPECT_EQ(cluster.controller.consistency_changes(), 1);
}

TEST(ChangeConsistencyTest, DynamicPolicySwitchesOnSustainedViolation) {
  // Fig. 5a / Fig. 7: inject a delay at one replica; after the latency
  // threshold (800ms) is violated for >30s, Wiera switches to Eventual.
  Cluster cluster;
  auto options =
      cluster.options_for(policy::builtin::multi_primaries_consistency());
  auto dyn = policy::parse_policy(policy::builtin::dynamic_consistency());
  ASSERT_TRUE(dyn.ok());
  options.dynamic_consistency = std::move(dyn).value();
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());

  // A 600ms extra delay at the EU peer pushes the put path (lock + sync
  // broadcast) past 800ms.
  cluster.network.topology().inject_node_delay(
      "tiera-eu-west", msec(600), TimePoint(sec(5).us()),
      TimePoint(sec(120).us()));

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  bool stop_writer = false;
  auto writer = [](WieraClient& c, bool& stop,
                   sim::Simulation& s) -> sim::Task<void> {
    int i = 0;
    while (!stop) {
      auto r = co_await c.put("k" + std::to_string(i++ % 8), Blob("v"));
      EXPECT_TRUE(r.ok());
      co_await s.delay(msec(500));
    }
  };
  cluster.sim.spawn(writer(client, stop_writer, cluster.sim));
  cluster.sim.run_until(TimePoint(sec(60).us()));
  stop_writer = true;
  EXPECT_EQ(cluster.controller.current_mode("w1"),
            ConsistencyMode::kEventual);
  EXPECT_GE(cluster.controller.consistency_changes(), 1);
}

// ------------------------------------------------------------ change primary

TEST(ChangePrimaryTest, ManualMigration) {
  Cluster cluster;
  auto peers = cluster.controller.start_instances(
      "w1",
      cluster.options_for(policy::builtin::primary_backup_consistency()));
  ASSERT_TRUE(peers.ok());
  cluster.run([&]() -> sim::Task<void> {
    Status st = co_await cluster.controller.change_primary(
        "w1", "tiera-eu-west");
    EXPECT_TRUE(st.ok()) << st.to_string();
  });
  EXPECT_EQ(cluster.controller.current_primary("w1"), "tiera-eu-west");
  EXPECT_TRUE(cluster.controller.peer("tiera-eu-west")->is_primary());
  EXPECT_FALSE(cluster.controller.peer("tiera-us-west")->is_primary());

  cluster.run([&]() -> sim::Task<void> {
    Status st = co_await cluster.controller.change_primary("w1", "nope");
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  });
}

TEST(ChangePrimaryTest, RequestsMonitorMigratesPrimaryTowardLoad) {
  // Fig. 5b / §5.2: most traffic arrives at EU; the primary (US-West)
  // notices it forwards more than it serves directly, and Wiera migrates
  // the primary to the EU instance.
  Cluster cluster;
  auto options =
      cluster.options_for(policy::builtin::primary_backup_consistency());
  auto cp = policy::parse_policy(policy::builtin::change_primary());
  ASSERT_TRUE(cp.ok());
  options.change_primary = std::move(cp).value();
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());
  ASSERT_EQ(cluster.controller.current_primary("w1"), "tiera-us-west");

  WieraClient eu(cluster.sim, cluster.network, cluster.registry, "app",
                 "client-eu-west", *peers);
  bool stop_writer = false;
  auto writer = [](WieraClient& c, bool& stop,
                   sim::Simulation& s) -> sim::Task<void> {
    int i = 0;
    while (!stop) {
      auto r = co_await c.put("k" + std::to_string(i++ % 4), Blob("v"));
      EXPECT_TRUE(r.ok());
      co_await s.delay(msec(800));
    }
  };
  cluster.sim.spawn(writer(eu, stop_writer, cluster.sim));
  cluster.sim.run_until(TimePoint(sec(90).us()));
  stop_writer = true;
  EXPECT_EQ(cluster.controller.current_primary("w1"), "tiera-eu-west");
  EXPECT_GE(cluster.controller.primary_changes(), 1);
}

// ------------------------------------------------------------ failover

TEST(FailoverTest, ClientRetriesNextClosestOnOutage) {
  Cluster cluster;
  auto options =
      cluster.options_for(policy::builtin::eventual_consistency());
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());

  // The client's closest peer (US-West) is down for the first 10 seconds.
  cluster.network.topology().inject_outage("tiera-us-west", TimePoint(0),
                                           TimePoint(sec(10).us()));
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await client.put("k", Blob("v"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
  });
  EXPECT_GE(client.failovers(), 1);
}

TEST(FailoverTest, HeartbeatMarksDownNodes) {
  Cluster cluster;
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(policy::builtin::eventual_consistency()));
  ASSERT_TRUE(peers.ok());
  cluster.controller.start();
  cluster.network.topology().inject_outage(
      "tiera-eu-west", TimePoint(sec(2).us()), TimePoint(sec(60).us()));
  cluster.sim.run_until(TimePoint(sec(10).us()));
  EXPECT_FALSE(cluster.controller.server_alive("tiera-eu-west"));
  EXPECT_TRUE(cluster.controller.server_alive("tiera-us-west"));
  auto down = cluster.controller.down_instances("w1");
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], "tiera-eu-west");
  cluster.controller.stop();
}

// ------------------------------------------------------------ remote tiers

TEST(RemoteTierTest, GetForwardingServesFromRemoteInstance) {
  // §5.4 pattern: gets at US-East are forwarded to a designated instance.
  Cluster cluster;
  auto options =
      cluster.options_for(policy::builtin::primary_backup_consistency());
  options.customize = [](WieraPeer::Config& config) {
    config.local.tier_tweak = [](const std::string&, store::TierSpec& spec) {
      spec.jitter_fraction = 0;
    };
    if (config.instance_id == "tiera-us-east") {
      config.get_forward_target = "tiera-us-west";
    }
  };
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok());

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    co_await client.put("k", Blob("v"));
    // Issue a get against the US-East peer directly.
    GetRequest req;
    req.key = "k";
    req.client = "app";
    auto got = co_await cluster.controller.peer("tiera-us-east")
                   ->client_get(std::move(req));
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got->served_by, "tiera-us-west");  // forwarded
  });
}

// ------------------------------------------------------------ centralized cold

TEST(ColdDataTest, CentralizedColdTierHoldsSingleReplica) {
  // §5.3: cold objects are shipped to the US-East peer's S3-IA tier; other
  // regions drop their replicas and fetch remotely on access.
  Cluster cluster;
  auto options = cluster.options_for(R"(
Wiera CentralColdPolicy() {
   Region1 = {name:ColdInstance, region:US-West,
      tier1 = {name:LocalDisk, size=10G},
      tier2 = {name:S3-IA, size=100G} }
   Region2 = {name:ColdInstance, region:US-East,
      tier1 = {name:LocalDisk, size=10G},
      tier2 = {name:S3-IA, size=100G} }

   event(insert.into) : response {
      store(what:insert.object, to:local_instance)
      queue(what:insert.object, to:all_regions)
   }
}
)");
  options.resolve_local = [](const std::string& name)
      -> Result<policy::PolicyDoc> {
    if (name != "ColdInstance") return not_found(name);
    return policy::parse_policy(R"(
Tiera ColdInstance() {
   tier1: {name: LocalDisk, size: 10G};
   tier2: {name: S3-IA, size: 100G};
   event(object.lastAccessedTime > 120 hours) : response {
      move(what:object.location == tier1, to:tier2);
   }
}
)");
  };
  options.customize = [](WieraPeer::Config& config) {
    config.local.tier_tweak = [](const std::string&, store::TierSpec& spec) {
      spec.jitter_fraction = 0;
    };
    config.cold_tier_label = "tier2";
    if (config.instance_id != "tiera-us-east") {
      config.centralized_cold_target = "tiera-us-east";
    }
  };
  auto peers = cluster.controller.start_instances("w1", std::move(options));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();

  WieraClient west(cluster.sim, cluster.network, cluster.registry, "app",
                   "client-us-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    auto put = co_await west.put("cold-key", Blob(Bytes(4096, 7)));
    EXPECT_TRUE(put.ok());
  });
  // Let 130 hours pass with no access: the cold scan ships the west replica
  // to US-East and drops the local copy.
  cluster.sim.run_until(TimePoint(hoursd(130).us()));

  WieraPeer* west_peer = cluster.controller.peer("tiera-us-west");
  WieraPeer* east_peer = cluster.controller.peer("tiera-us-east");
  EXPECT_EQ(west_peer->local().meta().find("cold-key"), nullptr);
  ASSERT_NE(east_peer->local().meta().find("cold-key"), nullptr);

  // Reading from the west still works — served by the centralized replica,
  // paying the cross-country latency.
  cluster.run([&]() -> sim::Task<void> {
    auto got = co_await west.get("cold-key");
    EXPECT_TRUE(got.ok()) << got.status().to_string();
    EXPECT_EQ(got->served_by, "tiera-us-east");
    EXPECT_EQ(got->value.size(), 4096u);
  });
}

// ------------------------------------------------------------ health ranking

// Sparse data must stay NEUTRAL (health.h Config::min_samples): a peer with
// fewer than min_samples observations ranks exactly like one never observed,
// so early samples can neither promote nor demote it past proximity order.
TEST(ClientHealthRanking, SparseSamplesRankNeutral) {
  obs::Registry registry;
  HealthTracker::Config config;
  config.enabled = true;
  HealthTracker health(registry, config);
  TimePoint now = TimePoint::origin();

  // Two brutally slow latency samples — still below min_samples (3).
  health.record_latency("tiera-us-west", msec(900), now);
  now = now + sec(1);
  health.record_latency("tiera-us-west", msec(900), now);
  EXPECT_EQ(health.latency_ratio("tiera-us-west"), 1.0);
  EXPECT_EQ(health.rank_penalty("tiera-us-west"), 0);
  EXPECT_EQ(health.rank_penalty("tiera-never-observed"), 0);
  EXPECT_FALSE(health.in_probation("tiera-us-west"));

  // Two prompt pings then a long silence — φ stays 0 below min_samples, so
  // the silence cannot push the peer into probation either.
  health.record_ping("tiera-eu-west", true, now);
  health.record_ping("tiera-eu-west", true, now + sec(1));
  EXPECT_EQ(health.phi("tiera-eu-west", now + sec(30)), 0.0);
  EXPECT_EQ(health.rank_penalty("tiera-eu-west"), 0);
}

// Once the baseline exists, a sustained latency spike walks the peer through
// degraded (penalty 1) into probation (penalty 2), and the dwell plus
// hysteresis hold it there until the EWMA genuinely recovers.
TEST(ClientHealthRanking, SustainedDegradationRanksPeerLast) {
  obs::Registry registry;
  HealthTracker::Config config;
  config.enabled = true;
  HealthTracker health(registry, config);
  TimePoint now = TimePoint::origin();

  for (int i = 0; i < 3; ++i) {  // establish a ~10ms baseline
    health.record_latency("tiera-us-west", msec(10), now);
    now = now + sec(1);
  }
  EXPECT_EQ(health.rank_penalty("tiera-us-west"), 0);

  // One 25x sample lifts the EWMA past degraded_factor (4x): probation.
  health.record_latency("tiera-us-west", msec(250), now);
  EXPECT_TRUE(health.in_probation("tiera-us-west"));
  EXPECT_EQ(health.rank_penalty("tiera-us-west"), 2);
  EXPECT_EQ(health.probation_entries(), 1);

  // Recovery: fast samples decay the EWMA, but the exit waits for the
  // minimum dwell and the ratio to drop under degraded_factor/2.
  for (int i = 0; i < 12; ++i) {
    now = now + sec(1);
    health.record_latency("tiera-us-west", msec(10), now);
  }
  EXPECT_FALSE(health.in_probation("tiera-us-west"));
  EXPECT_EQ(health.rank_penalty("tiera-us-west"), 0);
  EXPECT_EQ(health.probation_exits(), 1);
}

// ------------------------------------------------------------ property sweep

// All protocols agree on basic read-your-writes at the writing site.
class ProtocolReadYourWrites
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ProtocolReadYourWrites, WriterSeesOwnWrite) {
  Cluster cluster;
  std::string_view src;
  const std::string name = GetParam();
  if (name == "multi") src = policy::builtin::multi_primaries_consistency();
  if (name == "pb") src = policy::builtin::primary_backup_consistency();
  if (name == "eventual") src = policy::builtin::eventual_consistency();
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(src));
  ASSERT_TRUE(peers.ok());
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  cluster.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      const std::string key = "k" + std::to_string(i);
      const std::string value = "v" + std::to_string(i);
      auto put = co_await client.put(key, Blob(value));
      EXPECT_TRUE(put.ok());
      auto got = co_await client.get(key);
      EXPECT_TRUE(got.ok());
      EXPECT_EQ(got->value.to_string(), value);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Protocols, ProtocolReadYourWrites,
                         ::testing::Values("multi", "pb", "eventual"));

}  // namespace
}  // namespace wiera::geo
