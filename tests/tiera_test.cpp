// Tests for TieraInstance: policy-driven data path, versioning API,
// write-back/write-through policies, thresholds, cold-data demotion,
// LWW conflict resolution, modular (forward) tiers.
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "sim/simulation.h"
#include "tiera/forward_tier.h"
#include "tiera/instance.h"
#include "tiera/selector.h"

namespace wiera::tiera {
namespace {

// Run `body` to completion, then stop the simulation loop. Instances with
// active timer loops keep the event queue non-empty forever, so we cannot
// simply drain the queue; stopping on completion leaves the clock exactly
// at the body's finish time.
template <typename F>
void run(sim::Simulation& sim, F&& body) {
  bool done = false;
  auto wrapper = [](sim::Simulation& s, F body, bool& flag) -> sim::Task<void> {
    co_await body();
    flag = true;
    s.stop();
  };
  sim.spawn(wrapper(sim, std::forward<F>(body), done));
  sim.run();
  ASSERT_TRUE(done);
}

std::unique_ptr<TieraInstance> make_instance(sim::Simulation& sim,
                                             std::string_view policy_src,
                                             Duration timer = sec(10)) {
  auto doc = policy::parse_policy(policy_src);
  EXPECT_TRUE(doc.ok()) << doc.status().to_string();
  TieraInstance::Config config;
  config.instance_id = "test-instance";
  config.region = "us-east";
  config.policy = std::move(doc).value();
  config.params["t"] = policy::Value::duration_of(timer);
  config.tier_tweak = [](const std::string&, store::TierSpec& spec) {
    spec.jitter_fraction = 0;
  };
  return std::make_unique<TieraInstance>(sim, std::move(config));
}

// ------------------------------------------------------------ LowLatency

TEST(TieraInstanceTest, LowLatencyPutLandsInMemoryAndIsDirty) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance());
  run(sim, [&]() -> sim::Task<void> {
    auto r = co_await inst->put("k", Blob("v"));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->version, 1);
  });
  // Stored in tier1 (memcached), not yet in tier2 (EBS).
  EXPECT_TRUE(inst->tier_by_label("tier1")->contains(
      TieraInstance::versioned_key("k", 1)));
  EXPECT_FALSE(inst->tier_by_label("tier2")->contains(
      TieraInstance::versioned_key("k", 1)));
  EXPECT_TRUE(inst->meta().find_version("k", 1)->dirty);
  // Memory write: sub-millisecond.
  EXPECT_LT(sim.now().us(), 1000);
}

TEST(TieraInstanceTest, WriteBackTimerPersistsDirtyData) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance(),
                            sec(10));
  inst->start();
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("k", Blob("v"));
    co_return;
  });
  sim.run_until(TimePoint(sec(11).us()));
  // After the timer fired, the object is copied to EBS and marked clean.
  EXPECT_TRUE(inst->tier_by_label("tier2")->contains(
      TieraInstance::versioned_key("k", 1)));
  EXPECT_FALSE(inst->meta().find_version("k", 1)->dirty);
  inst->stop();
}

TEST(TieraInstanceTest, WriteBackSkipsCleanData) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance(),
                            sec(10));
  inst->start();
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("k", Blob("v"));
    co_return;
  });
  sim.run_until(TimePoint(sec(11).us()));
  const int64_t puts_after_first = inst->tier_by_label("tier2")->stats().puts;
  EXPECT_EQ(puts_after_first, 1);
  // Two more timer periods with no new writes: no extra tier2 puts.
  sim.run_until(TimePoint(sec(31).us()));
  EXPECT_EQ(inst->tier_by_label("tier2")->stats().puts, puts_after_first);
  inst->stop();
}

// ------------------------------------------------------------ Persistent

TEST(TieraInstanceTest, WriteThroughCopiesImmediately) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::persistent_instance());
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("k", Blob("v"));
    co_return;
  });
  // Default store to tier1 + write-through copy to tier2.
  EXPECT_TRUE(inst->tier_by_label("tier1")->contains(
      TieraInstance::versioned_key("k", 1)));
  EXPECT_TRUE(inst->tier_by_label("tier2")->contains(
      TieraInstance::versioned_key("k", 1)));
}

TEST(TieraInstanceTest, FillThresholdTriggersBackup) {
  sim::Simulation sim;
  // Small tiers so the 50% threshold is reachable quickly.
  auto inst = make_instance(sim, R"(
Tiera SmallPersistent() {
   tier1: {name: Memcached, size: 100K};
   tier2: {name: EBS, size: 10K};
   tier3: {name: S3, size: 100K};
   event(insert.into == tier1) : response {
      copy(what:insert.object, to:tier2);
   }
   event(tier2.filled == 50%) : response {
      copy(what:object.location == tier1, to:tier3);
   }
}
)");
  run(sim, [&]() -> sim::Task<void> {
    // 6 objects of 1K: tier2 fill crosses 50% (5K/10K) on the 5th put.
    for (int i = 0; i < 6; ++i) {
      auto r = co_await inst->put("k" + std::to_string(i),
                                  Blob(Bytes(1024, 1)));
      EXPECT_TRUE(r.ok());
    }
  });
  EXPECT_GT(inst->tier_by_label("tier3")->object_count(), 0);
}

// ------------------------------------------------------------ versioning

TEST(TieraInstanceTest, VersioningApi) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance());
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("k", Blob("v1"));
    co_await inst->put("k", Blob("v2"));
    co_await inst->put("k", Blob("v3"));

    auto latest = co_await inst->get("k");
    EXPECT_TRUE(latest.ok());
    EXPECT_EQ(latest->version, 3);
    EXPECT_EQ(latest->value.to_string(), "v3");

    auto v1 = co_await inst->get_version("k", 1);
    EXPECT_TRUE(v1.ok());
    EXPECT_EQ(v1->value.to_string(), "v1");

    EXPECT_EQ(inst->get_version_list("k"),
              (std::vector<int64_t>{1, 2, 3}));

    EXPECT_TRUE((co_await inst->remove_version("k", 2)).ok());
    EXPECT_EQ(inst->get_version_list("k"), (std::vector<int64_t>{1, 3}));
    auto gone = co_await inst->get_version("k", 2);
    EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);

    EXPECT_TRUE((co_await inst->remove("k")).ok());
    auto all_gone = co_await inst->get("k");
    EXPECT_EQ(all_gone.status().code(), StatusCode::kNotFound);
  });
  EXPECT_EQ(inst->tier_by_label("tier1")->object_count(), 0);
}

TEST(TieraInstanceTest, UpdateWritesExplicitVersion) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance());
  run(sim, [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await inst->update("k", 5, Blob("v5"))).ok());
    auto r = co_await inst->get("k");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->version, 5);
    // A regular put continues from the explicit version.
    auto pr = co_await inst->put("k", Blob("v6"));
    EXPECT_TRUE(pr.ok());
    EXPECT_EQ(pr->version, 6);
  });
}

TEST(TieraInstanceTest, MaxVersionsPrunesOldest) {
  sim::Simulation sim;
  auto doc = policy::parse_policy(policy::builtin::low_latency_instance());
  ASSERT_TRUE(doc.ok());
  TieraInstance::Config config;
  config.instance_id = "gc-test";
  config.region = "us-east";
  config.policy = std::move(doc).value();
  config.params["t"] = policy::Value::duration_of(sec(3600));
  config.max_versions = 2;
  TieraInstance inst(sim, std::move(config));
  run(sim, [&]() -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await inst.put("k", Blob("v" + std::to_string(i)));
    }
  });
  EXPECT_EQ(inst.get_version_list("k"), (std::vector<int64_t>{4, 5}));
  // GC also removed the payloads from the tier.
  EXPECT_FALSE(inst.tier_by_label("tier1")->contains(
      TieraInstance::versioned_key("k", 1)));
}

// ------------------------------------------------------------ LWW conflicts

TEST(TieraInstanceTest, LastWriteWinsAcceptsNewerVersion) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance());
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("k", Blob("local-v1"));
    TieraInstance::RemoteUpdate update;
    update.key = "k";
    update.version = 2;
    update.value = Blob("remote-v2");
    update.last_modified = sim.now();
    update.origin = "other-instance";
    auto accepted = co_await inst->apply_remote_update(std::move(update));
    EXPECT_TRUE(accepted.ok());
    EXPECT_TRUE(*accepted);
    auto r = co_await inst->get("k");
    EXPECT_EQ(r->value.to_string(), "remote-v2");
  });
}

TEST(TieraInstanceTest, LastWriteWinsRejectsStaleVersion) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance());
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("k", Blob("v1"));
    co_await inst->put("k", Blob("v2"));
    TieraInstance::RemoteUpdate update;
    update.key = "k";
    update.version = 1;  // older than local latest (2)
    update.value = Blob("stale");
    update.last_modified = sim.now();
    update.origin = "other";
    auto accepted = co_await inst->apply_remote_update(std::move(update));
    EXPECT_TRUE(accepted.ok());
    EXPECT_FALSE(*accepted);
    auto r = co_await inst->get("k");
    EXPECT_EQ(r->value.to_string(), "v2");
  });
}

TEST(TieraInstanceTest, LastWriteWinsTieBreaksOnModifiedTime) {
  sim::Simulation sim;
  auto inst = make_instance(sim, policy::builtin::low_latency_instance());
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("k", Blob("local"));  // version 1, written at ~t0
    co_await sim.delay(sec(5));
    TieraInstance::RemoteUpdate newer;
    newer.key = "k";
    newer.version = 1;  // same version...
    newer.value = Blob("remote-newer");
    newer.last_modified = sim.now();  // ...but written later
    newer.origin = "other";
    auto accepted = co_await inst->apply_remote_update(std::move(newer));
    EXPECT_TRUE(accepted.ok());
    EXPECT_TRUE(*accepted);

    TieraInstance::RemoteUpdate older;
    older.key = "k";
    older.version = 1;
    older.value = Blob("remote-older");
    older.last_modified = TimePoint(1);  // before everything
    older.origin = "other2";
    accepted = co_await inst->apply_remote_update(std::move(older));
    EXPECT_TRUE(accepted.ok());
    EXPECT_FALSE(*accepted);

    auto r = co_await inst->get("k");
    EXPECT_EQ(r->value.to_string(), "remote-newer");
  });
}

// ------------------------------------------------------------ cold data

TEST(TieraInstanceTest, ColdDataMovesToCheaperTier) {
  sim::Simulation sim;
  auto inst = make_instance(sim, R"(
Tiera ColdDemotion() {
   tier1: {name: EBS, size: 10G};
   tier2: {name: S3-IA, size: 100G};
   event(object.lastAccessedTime > 120 hours) : response {
      move(what:object.location == tier1, to:tier2);
   }
}
)");
  inst->start();
  run(sim, [&]() -> sim::Task<void> {
    co_await inst->put("cold-key", Blob(Bytes(4096, 1)));
    co_await inst->put("hot-key", Blob(Bytes(4096, 2)));
    co_return;
  });
  // Keep "hot-key" warm by touching it every 50 hours.
  for (int i = 1; i <= 4; ++i) {
    sim.run_until(TimePoint(hoursd(50.0 * i).us()));
    bool done = false;
    auto toucher = [](TieraInstance& t, bool& flag) -> sim::Task<void> {
      auto r = co_await t.get("hot-key");
      EXPECT_TRUE(r.ok());
      flag = true;
    };
    sim.spawn(toucher(*inst, done));
    sim.run_until(sim.now() + sec(10));
    ASSERT_TRUE(done);
  }
  sim.run_until(TimePoint(hoursd(200).us()));
  // cold-key (untouched since t=0) moved to tier2; hot-key stayed.
  EXPECT_EQ(inst->meta().find("cold-key")->latest()->tier, "tier2");
  EXPECT_EQ(inst->meta().find("hot-key")->latest()->tier, "tier1");
  EXPECT_FALSE(inst->tier_by_label("tier1")->contains(
      TieraInstance::versioned_key("cold-key", 1)));
  inst->stop();
}

// ------------------------------------------------------------ read fallback

TEST(TieraInstanceTest, ReadFallsBackWhenMemoryEvicts) {
  sim::Simulation sim;
  // Tiny memory tier (evicts) + write-through disk.
  auto inst = make_instance(sim, R"(
Tiera TinyMemory() {
   tier1: {name: Memcached, size: 8K};
   tier2: {name: EBS, size: 1G};
   event(insert.into == tier1) : response {
      copy(what:insert.object, to:tier2);
   }
}
)");
  run(sim, [&]() -> sim::Task<void> {
    // 4 objects of 4K: only 2 fit in memory; older ones evict.
    for (int i = 0; i < 4; ++i) {
      co_await inst->put("k" + std::to_string(i), Blob(Bytes(4096, 1)));
    }
    // k0 evicted from memory but readable from the disk copy.
    auto r = co_await inst->get("k0");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->value.size(), 4096u);
  });
  EXPECT_GT(inst->tier_by_label("tier1")->stats().evictions, 0);
}

// ------------------------------------------------------------ selectors

TEST(SelectorTest, InsertObjectAndKey) {
  auto obj = compile_selector(*policy::make_path({"insert", "object"}));
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->kind, ObjectSelector::Kind::kInsertObject);
  auto key = compile_selector(*policy::make_path({"insert", "key"}));
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->kind, ObjectSelector::Kind::kInsertKey);
}

TEST(SelectorTest, QueryConjunction) {
  using namespace policy;
  auto expr = make_binary(
      BinaryOp::kAnd,
      make_binary(BinaryOp::kEq, make_path({"object", "location"}),
                  make_path({"tier1"})),
      make_binary(BinaryOp::kEq, make_path({"object", "dirty"}),
                  make_literal(Value::bool_of(true))));
  auto sel = compile_selector(*expr);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel->location_equals, "tier1");
  EXPECT_TRUE(*sel->dirty_equals);

  metadb::ObjectMeta meta;
  meta.key = "k";
  metadb::VersionMeta& vm = meta.versions[1];
  vm.version = 1;
  vm.tier = "tier1";
  vm.dirty = true;
  EXPECT_TRUE(sel->matches(meta));
  vm.dirty = false;
  EXPECT_FALSE(sel->matches(meta));
  vm.dirty = true;
  vm.tier = "tier2";
  EXPECT_FALSE(sel->matches(meta));
}

TEST(SelectorTest, TagSelector) {
  using namespace policy;
  auto expr = make_binary(BinaryOp::kEq, make_path({"object", "tag"}),
                          make_path({"tmp"}));
  auto sel = compile_selector(*expr);
  ASSERT_TRUE(sel.ok());
  metadb::ObjectMeta meta;
  meta.versions[1].version = 1;
  EXPECT_FALSE(sel->matches(meta));
  meta.tags.insert("tmp");
  EXPECT_TRUE(sel->matches(meta));
}

TEST(SelectorTest, RejectsUnsupported) {
  using namespace policy;
  // Disjunction unsupported.
  auto or_expr = make_binary(
      BinaryOp::kOr,
      make_binary(BinaryOp::kEq, make_path({"object", "location"}),
                  make_path({"tier1"})),
      make_binary(BinaryOp::kEq, make_path({"object", "dirty"}),
                  make_literal(Value::bool_of(true))));
  EXPECT_FALSE(compile_selector(*or_expr).ok());
  // Unknown attribute.
  auto unknown = make_binary(BinaryOp::kEq, make_path({"object", "color"}),
                             make_path({"red"}));
  EXPECT_FALSE(compile_selector(*unknown).ok());
  // Bad path.
  EXPECT_FALSE(compile_selector(*make_path({"object"})).ok());
}

// ------------------------------------------------------------ forward tier

TEST(ForwardTierTest, ModularInstanceComposition) {
  sim::Simulation sim;
  // Backing "raw data" instance.
  auto raw = make_instance(sim, policy::builtin::persistent_instance());
  ForwardTier forward(sim, "raw", *raw, /*read_only=*/true);

  run(sim, [&]() -> sim::Task<void> {
    co_await raw->put("input", Blob("raw-bytes"));
    // Read through the forward tier (as INTERMEDIATE-DATA would).
    auto r = co_await forward.get("input", {});
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), "raw-bytes");
    // Writes are rejected on a read-only mount.
    auto st = co_await forward.put("x", Blob("y"), {});
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
    auto rm = co_await forward.remove("input");
    EXPECT_EQ(rm.code(), StatusCode::kFailedPrecondition);
  });
  EXPECT_TRUE(forward.contains("input"));
  EXPECT_FALSE(forward.contains("nope"));
}

TEST(ForwardTierTest, WritableMount) {
  sim::Simulation sim;
  auto backing = make_instance(sim, policy::builtin::persistent_instance());
  ForwardTier forward(sim, "rw", *backing, /*read_only=*/false);
  run(sim, [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await forward.put("k", Blob("v"), {})).ok());
    auto r = co_await backing->get("k");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->value.to_string(), "v");
    EXPECT_TRUE((co_await forward.remove("k")).ok());
  });
}

// Property sweep: version history stays consistent across interleavings of
// put / update / remove_version.
class VersionHistory : public ::testing::TestWithParam<int> {};

TEST_P(VersionHistory, LatestAlwaysHighestRemaining) {
  sim::Simulation sim(static_cast<uint64_t>(GetParam()));
  auto inst = make_instance(sim, policy::builtin::low_latency_instance());
  run(sim, [&]() -> sim::Task<void> {
    Rng rng(static_cast<uint64_t>(GetParam()));
    for (int i = 0; i < 40; ++i) {
      const double roll = rng.next_double();
      if (roll < 0.6) {
        co_await inst->put("k", Blob("p" + std::to_string(i)));
      } else if (roll < 0.8) {
        auto versions = inst->get_version_list("k");
        if (!versions.empty()) {
          const auto pick = versions[rng.next_below(versions.size())];
          co_await inst->remove_version("k", pick);
        }
      } else {
        co_await inst->update(
            "k", static_cast<int64_t>(rng.uniform_int(1, 50)), Blob("u"));
      }
      auto versions = inst->get_version_list("k");
      if (!versions.empty()) {
        auto r = co_await inst->get("k");
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r->version, versions.back());
        EXPECT_TRUE(std::is_sorted(versions.begin(), versions.end()));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionHistory, ::testing::Range(1, 6));

}  // namespace
}  // namespace wiera::tiera
