// Tests for the policy DSL: lexer, parser, evaluator, trigger classifier,
// and the built-in paper policies.
#include <gtest/gtest.h>

#include "common/units.h"
#include "policy/builtin_policies.h"
#include "policy/eval.h"
#include "policy/lexer.h"
#include "policy/parser.h"

namespace wiera::policy {
namespace {

// ------------------------------------------------------------ lexer

TEST(LexerTest, BasicTokens) {
  auto toks = tokenize("tier1: {name: Memcached, size: 5G};");
  ASSERT_TRUE(toks.ok());
  const auto& t = *toks;
  ASSERT_GE(t.size(), 11u);
  EXPECT_EQ(t[0].kind, TokenKind::kIdent);
  EXPECT_EQ(t[0].text, "tier1");
  EXPECT_EQ(t[1].kind, TokenKind::kColon);
  EXPECT_EQ(t[2].kind, TokenKind::kLBrace);
  // size: 5G -> number 5 with suffix G
  bool found_5g = false;
  for (const auto& tok : t) {
    if (tok.kind == TokenKind::kNumber && tok.number == 5 &&
        tok.suffix == "G") {
      found_5g = true;
    }
  }
  EXPECT_TRUE(found_5g);
}

TEST(LexerTest, CommentsVsPercentLiterals) {
  auto toks = tokenize(
      "% a comment line\n"
      "event(tier2.filled == 50%) % trailing comment\n");
  ASSERT_TRUE(toks.ok());
  bool found_pct = false;
  for (const auto& tok : *toks) {
    if (tok.kind == TokenKind::kNumber && tok.number == 50 &&
        tok.suffix == "%") {
      found_pct = true;
    }
    // Comment words must not leak into the token stream.
    if (tok.kind == TokenKind::kIdent) {
      EXPECT_TRUE(tok.text == "event" || tok.text == "tier2" ||
                  tok.text == "filled")
          << "comment text was tokenized: " << tok.text;
    }
  }
  EXPECT_TRUE(found_pct);
}

TEST(LexerTest, OperatorsAndRates) {
  auto toks = tokenize(">= <= == != && || = < > 40KB/s");
  ASSERT_TRUE(toks.ok());
  const auto& t = *toks;
  EXPECT_EQ(t[0].kind, TokenKind::kGe);
  EXPECT_EQ(t[1].kind, TokenKind::kLe);
  EXPECT_EQ(t[2].kind, TokenKind::kEq);
  EXPECT_EQ(t[3].kind, TokenKind::kNe);
  EXPECT_EQ(t[4].kind, TokenKind::kAnd);
  EXPECT_EQ(t[5].kind, TokenKind::kOr);
  EXPECT_EQ(t[6].kind, TokenKind::kAssign);
  EXPECT_EQ(t[7].kind, TokenKind::kLt);
  EXPECT_EQ(t[8].kind, TokenKind::kGt);
  EXPECT_EQ(t[9].kind, TokenKind::kNumber);
  EXPECT_EQ(t[9].suffix, "KB/s");
}

TEST(LexerTest, DashedIdentifiers) {
  auto toks = tokenize("region:US-West-1");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].text, "US-West-1");
}

TEST(LexerTest, RejectsBadCharacters) {
  EXPECT_FALSE(tokenize("tier1 @ {}").ok());
  EXPECT_FALSE(tokenize("\"unterminated").ok());
}

TEST(LexerTest, LineNumbersTracked) {
  auto toks = tokenize("a\nb\nc");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[2].line, 3);
}

// ------------------------------------------------------------ parser

TEST(ParserTest, ParsesTieraHeaderAndTiers) {
  auto doc = parse_policy(builtin::low_latency_instance());
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_FALSE(doc->is_wiera);
  EXPECT_EQ(doc->name, "LowLatencyInstance");
  ASSERT_EQ(doc->params.size(), 1u);
  EXPECT_EQ(doc->params[0].first, "time");
  EXPECT_EQ(doc->params[0].second, "t");
  ASSERT_EQ(doc->tiers.size(), 2u);
  EXPECT_EQ(doc->tiers[0].label, "tier1");
  EXPECT_EQ(doc->tiers[0].attr("name")->text, "Memcached");
  EXPECT_EQ(doc->tiers[0].attr("size")->size_bytes, 5 * GiB);
  ASSERT_EQ(doc->events.size(), 2u);
}

TEST(ParserTest, ParsesEventResponses) {
  auto doc = parse_policy(builtin::low_latency_instance());
  ASSERT_TRUE(doc.ok());
  // First event: assign + store action.
  const EventRule& insert_rule = doc->events[0];
  ASSERT_EQ(insert_rule.response.size(), 2u);
  ASSERT_TRUE(insert_rule.response[0].is_assign());
  EXPECT_EQ(insert_rule.response[0].assign().target.dotted(),
            "insert.object.dirty");
  ASSERT_TRUE(insert_rule.response[1].is_action());
  EXPECT_EQ(insert_rule.response[1].action().name, "store");
  EXPECT_EQ(insert_rule.response[1].action().arg("to")->path().parts[0],
            "tier1");

  // Second event: copy with a compound selector.
  const EventRule& timer_rule = doc->events[1];
  ASSERT_EQ(timer_rule.response.size(), 1u);
  const ActionStmt& copy = timer_rule.response[0].action();
  EXPECT_EQ(copy.name, "copy");
  const Expr* what = copy.arg("what");
  ASSERT_NE(what, nullptr);
  ASSERT_TRUE(what->is_binary());
  EXPECT_EQ(what->binary().op, BinaryOp::kAnd);
}

TEST(ParserTest, ParsesWieraRegionsWithNestedTiers) {
  auto doc = parse_policy(builtin::multi_primaries_consistency());
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_TRUE(doc->is_wiera);
  ASSERT_EQ(doc->regions.size(), 4u);
  const RegionDecl& r1 = doc->regions[0];
  EXPECT_EQ(r1.label, "Region1");
  EXPECT_EQ(r1.instance_name(), "LowLatencyInstance");
  EXPECT_EQ(r1.region(), "US-West");
  EXPECT_FALSE(r1.primary());
  ASSERT_EQ(r1.tiers.size(), 2u);
  EXPECT_EQ(r1.tiers[0].label, "tier1");
  EXPECT_EQ(r1.tiers[0].attr("name")->text, "LocalMemory");
}

TEST(ParserTest, PrimaryFlagParsed) {
  auto doc = parse_policy(builtin::primary_backup_consistency());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->regions[0].primary());
  EXPECT_FALSE(doc->regions[1].primary());
}

TEST(ParserTest, UnbracedIfElseBranches) {
  auto doc = parse_policy(builtin::primary_backup_consistency());
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->events.size(), 1u);
  ASSERT_EQ(doc->events[0].response.size(), 1u);
  ASSERT_TRUE(doc->events[0].response[0].is_if());
  const IfStmt& if_stmt = doc->events[0].response[0].if_stmt();
  ASSERT_EQ(if_stmt.branches.size(), 2u);
  // if-branch greedily took store + copy; else got forward.
  EXPECT_EQ(if_stmt.branches[0].body.size(), 2u);
  EXPECT_NE(if_stmt.branches[0].condition, nullptr);
  EXPECT_EQ(if_stmt.branches[1].body.size(), 1u);
  EXPECT_EQ(if_stmt.branches[1].condition, nullptr);
  EXPECT_EQ(if_stmt.branches[1].body[0].action().name, "forward");
}

TEST(ParserTest, ElseIfChain) {
  auto doc = parse_policy(builtin::dynamic_consistency());
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  const IfStmt& if_stmt = doc->events[0].response[0].if_stmt();
  ASSERT_EQ(if_stmt.branches.size(), 2u);
  EXPECT_NE(if_stmt.branches[0].condition, nullptr);
  EXPECT_NE(if_stmt.branches[1].condition, nullptr);  // else-if, not else
  EXPECT_EQ(if_stmt.branches[0].body[0].action().name, "change_policy");
}

TEST(ParserTest, ParseErrorsCarryLineNumbers) {
  auto doc = parse_policy("Tiera X() {\n  tier1: {name Memcached}\n}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 2"), std::string::npos)
      << doc.status().to_string();
}

TEST(ParserTest, RejectsMissingHeader) {
  EXPECT_FALSE(parse_policy("Policy X() {}").ok());
  EXPECT_FALSE(parse_policy("Tiera () {}").ok());
  EXPECT_FALSE(parse_policy("Tiera X {}").ok());
}

TEST(ParserTest, AllBuiltinsParseAndValidate) {
  auto docs = builtin::all_parsed();
  EXPECT_EQ(docs.size(), 10u);
  for (const auto& doc : docs) {
    EXPECT_TRUE(validate(doc).ok())
        << doc.name << ": " << validate(doc).to_string();
  }
}

TEST(ParserTest, ByNameLookup) {
  auto doc = builtin::by_name("EventualConsistency");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->name, "EventualConsistency");
  EXPECT_FALSE(builtin::by_name("NoSuchPolicy").ok());
}

TEST(ValidateTest, RejectsUnknownAction) {
  auto doc = parse_policy(
      "Tiera X() { tier1: {name: Memcached, size: 1G};"
      " event(insert.into) : response { teleport(what:insert.object, "
      "to:tier1); } }");
  ASSERT_TRUE(doc.ok());
  Status st = validate(*doc);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("teleport"), std::string::npos);
}

TEST(ValidateTest, RejectsUndeclaredTierTarget) {
  auto doc = parse_policy(
      "Tiera X() { tier1: {name: Memcached, size: 1G};"
      " event(insert.into) : response { store(what:insert.object, "
      "to:tier9); } }");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(validate(*doc).ok());
}

TEST(ValidateTest, AcceptsNestedRegionTierTargets) {
  auto doc = parse_policy(builtin::reduced_cost_policy());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(validate(*doc).ok()) << validate(*doc).to_string();
}

// ------------------------------------------------------------ evaluator

TEST(EvalTest, LiteralsAndPaths) {
  MapContext ctx;
  ctx.set("threshold.latency", Value::duration_of(msec(900)));
  auto lat = make_path({"threshold", "latency"});
  auto v = evaluate(*lat, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->duration.us(), 900000);
}

TEST(EvalTest, BareWordsEvaluateAsStrings) {
  MapContext ctx;
  auto word = make_path({"EventualConsistency"});
  auto v = evaluate(*word, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->text, "EventualConsistency");
}

TEST(EvalTest, UnresolvedDottedPathFails) {
  MapContext ctx;
  auto path = make_path({"threshold", "latency"});
  EXPECT_FALSE(evaluate(*path, ctx).ok());
}

TEST(EvalTest, ComparisonAcrossUnits) {
  MapContext ctx;
  ctx.set("threshold.latency", Value::duration_of(msec(900)));
  // threshold.latency > 800 ms  ->  true
  auto expr = make_binary(BinaryOp::kGt, make_path({"threshold", "latency"}),
                          make_literal(Value::duration_of(msec(800))));
  auto v = evaluate_condition(*expr, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(EvalTest, AndOrShortCircuit) {
  MapContext ctx;
  ctx.set("a", Value::bool_of(false));
  // a && <unresolvable dotted path> — short-circuits to false.
  auto expr = make_binary(BinaryOp::kAnd, make_path({"a"}),
                          make_path({"no", "such", "path"}));
  auto v = evaluate_condition(*expr, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(*v);

  ctx.set("b", Value::bool_of(true));
  auto expr2 = make_binary(BinaryOp::kOr, make_path({"b"}),
                           make_path({"no", "such", "path"}));
  v = evaluate_condition(*expr2, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(EvalTest, EqualityOnStringsAndBools) {
  MapContext ctx;
  ctx.set("local_instance.isPrimary", Value::bool_of(true));
  auto expr =
      make_binary(BinaryOp::kEq, make_path({"local_instance", "isPrimary"}),
                  make_literal(Value::bool_of(true)));
  auto v = evaluate_condition(*expr, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);

  auto se = make_binary(BinaryOp::kEq, make_path({"put"}),
                        make_literal(Value::string_of("put")));
  v = evaluate_condition(*se, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(EvalTest, TypeErrorsSurface) {
  MapContext ctx;
  ctx.set("s", Value::string_of("abc"));
  auto expr = make_binary(BinaryOp::kGt, make_path({"s"}),
                          make_literal(Value::number_of(3)));
  EXPECT_FALSE(evaluate(*expr, ctx).ok());
  auto cond = make_literal(Value::number_of(3));
  EXPECT_FALSE(evaluate_condition(*cond, ctx).ok());
}

TEST(EvalTest, ClonePreservesStructure) {
  auto original = make_binary(
      BinaryOp::kAnd,
      make_binary(BinaryOp::kGt, make_path({"threshold", "latency"}),
                  make_literal(Value::duration_of(msec(800)))),
      make_binary(BinaryOp::kGt, make_path({"threshold", "period"}),
                  make_literal(Value::duration_of(sec(30)))));
  auto copy = clone_expr(*original);
  EXPECT_EQ(copy->to_string(), original->to_string());
}

// ------------------------------------------------------------ triggers

TEST(TriggerTest, ClassifiesInsert) {
  auto doc = parse_policy(builtin::multi_primaries_consistency());
  ASSERT_TRUE(doc.ok());
  auto trig = classify_trigger(*doc->events[0].trigger, {});
  ASSERT_TRUE(trig.ok());
  EXPECT_EQ(trig->kind, TriggerKind::kInsert);
}

TEST(TriggerTest, ClassifiesInsertInto) {
  auto doc = parse_policy(builtin::persistent_instance());
  ASSERT_TRUE(doc.ok());
  auto trig = classify_trigger(*doc->events[0].trigger, {});
  ASSERT_TRUE(trig.ok());
  EXPECT_EQ(trig->kind, TriggerKind::kInsertInto);
  EXPECT_EQ(trig->tier, "tier1");
}

TEST(TriggerTest, ClassifiesTimerWithParam) {
  auto doc = parse_policy(builtin::low_latency_instance());
  ASSERT_TRUE(doc.ok());
  std::map<std::string, Value> params{
      {"t", Value::duration_of(sec(10))}};
  auto trig = classify_trigger(*doc->events[1].trigger, params);
  ASSERT_TRUE(trig.ok()) << trig.status().to_string();
  EXPECT_EQ(trig->kind, TriggerKind::kTimer);
  EXPECT_EQ(trig->period.us(), 10000000);
  // Without the parameter bound, classification fails.
  EXPECT_FALSE(classify_trigger(*doc->events[1].trigger, {}).ok());
}

TEST(TriggerTest, ClassifiesTierFilled) {
  auto doc = parse_policy(builtin::persistent_instance());
  ASSERT_TRUE(doc.ok());
  auto trig = classify_trigger(*doc->events[1].trigger, {});
  ASSERT_TRUE(trig.ok());
  EXPECT_EQ(trig->kind, TriggerKind::kTierFilled);
  EXPECT_EQ(trig->tier, "tier2");
  EXPECT_DOUBLE_EQ(trig->fill_percent, 50.0);
}

TEST(TriggerTest, ClassifiesColdData) {
  auto doc = parse_policy(builtin::reduced_cost_policy());
  ASSERT_TRUE(doc.ok());
  auto trig = classify_trigger(*doc->events[0].trigger, {});
  ASSERT_TRUE(trig.ok());
  EXPECT_EQ(trig->kind, TriggerKind::kColdData);
  EXPECT_DOUBLE_EQ(trig->cold_after.hours(), 120.0);
}

TEST(TriggerTest, ClassifiesMonitoringThresholds) {
  auto dyn = parse_policy(builtin::dynamic_consistency());
  ASSERT_TRUE(dyn.ok());
  auto trig = classify_trigger(*dyn->events[0].trigger, {});
  ASSERT_TRUE(trig.ok());
  EXPECT_EQ(trig->kind, TriggerKind::kLatencyThreshold);

  auto cp = parse_policy(builtin::change_primary());
  ASSERT_TRUE(cp.ok());
  trig = classify_trigger(*cp->events[0].trigger, {});
  ASSERT_TRUE(trig.ok());
  EXPECT_EQ(trig->kind, TriggerKind::kRequestsThreshold);
}

TEST(TriggerTest, RejectsNonsense) {
  auto expr = make_path({"banana"});
  EXPECT_FALSE(classify_trigger(*expr, {}).ok());
  auto expr2 = make_binary(BinaryOp::kLt, make_path({"time"}),
                           make_literal(Value::number_of(3)));
  EXPECT_FALSE(classify_trigger(*expr2, {}).ok());
}

// Round-trip property: to_string of all built-in triggers re-parses.
class TriggerRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TriggerRoundTrip, BuiltinEventTriggersStringify) {
  auto docs = builtin::all_parsed();
  const auto& doc = docs[static_cast<size_t>(GetParam())];
  for (const auto& rule : doc.events) {
    const std::string s = rule.trigger->to_string();
    EXPECT_FALSE(s.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, TriggerRoundTrip,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace wiera::policy
