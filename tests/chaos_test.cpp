// Chaos suite (docs/FAULTS.md): seeded random fault plans run against a
// live four-region cluster while concurrent clients execute a read/write
// workload recorded into the consistency oracle. After quiescence the
// history is checked against the invariant of the consistency mode under
// test:
//   MultiPrimaries -> linearizability, PrimaryBackup -> primary order,
//   Eventual       -> convergence + LWW agreement.
// A failing run prints "CHAOS-FAIL seed=... mode=... fault=... trace=..."
// so scripts/chaos_sweep.sh can collect failing seeds and the determinism
// trace hash allows an exact replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "obs/telemetry.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "sim/attribution.h"
#include "sim/faults.h"
#include "sim/obs_pipeline.h"
#include "sim/oracle.h"
#include "wiera/chaos.h"
#include "wiera/client.h"
#include "wiera/controller.h"

namespace wiera::geo {
namespace {

const char* const kStorageNodes[] = {"tiera-us-west", "tiera-us-east",
                                     "tiera-eu-west", "tiera-asia-east"};
const char* const kKeys[] = {"k0", "k1"};

enum class FaultClass {
  kPartition,
  kCrash,
  kDropWindow,
  kLatencySpike,
  // Integrity fault classes (docs/INTEGRITY.md): silent storage bit-rot,
  // crashes that tear in-flight durable writes, payload-corrupting links.
  kBitRot,
  kTornWrite,
  kMsgCorrupt,
  // Gray-failure classes (docs/HEALTH.md): the node stays "up" by every
  // binary liveness test while serving degraded — a process freeze that
  // completes queued work late, an intermittently lossy inter-node link,
  // and a node running all its processing several times slower.
  kStutter,
  kFlakyLink,
  kSlowNode,
};

const char* fault_class_name(FaultClass fault) {
  switch (fault) {
    case FaultClass::kPartition:
      return "partition";
    case FaultClass::kCrash:
      return "crash";
    case FaultClass::kDropWindow:
      return "drop";
    case FaultClass::kLatencySpike:
      return "spike";
    case FaultClass::kBitRot:
      return "bitrot";
    case FaultClass::kTornWrite:
      return "torn";
    case FaultClass::kMsgCorrupt:
      return "msgcorrupt";
    case FaultClass::kStutter:
      return "stutter";
    case FaultClass::kFlakyLink:
      return "flakylink";
    case FaultClass::kSlowNode:
      return "slownode";
  }
  return "?";
}

bool is_integrity_fault(FaultClass fault) {
  return fault == FaultClass::kBitRot || fault == FaultClass::kTornWrite ||
         fault == FaultClass::kMsgCorrupt;
}

bool is_gray_fault(FaultClass fault) {
  return fault == FaultClass::kStutter || fault == FaultClass::kFlakyLink ||
         fault == FaultClass::kSlowNode;
}

sim::CheckMode check_mode_for(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kMultiPrimaries:
      return sim::CheckMode::kLinearizable;
    case ConsistencyMode::kEventual:
      return sim::CheckMode::kEventual;
    default:
      return sim::CheckMode::kPrimaryOrder;
  }
}

std::string_view policy_for(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kMultiPrimaries:
      return policy::builtin::multi_primaries_consistency();
    case ConsistencyMode::kEventual:
      return policy::builtin::eventual_consistency();
    default:
      return policy::builtin::primary_backup_consistency();
  }
}

// Same four-region deployment as wiera_test's fixture, plus the fault
// tolerance knobs the chaos runs rely on: leased locks (a crashed holder
// is evicted), serve leases (an isolated replica refuses strong-mode
// reads), and replication retries that outlast any fault window the random
// plans can generate (max 4s vs ~12.7s of backoff).
struct ChaosCluster {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  WieraController controller;
  std::vector<std::unique_ptr<TieraServer>> servers;

  explicit ChaosCluster(
      uint64_t seed,
      std::function<void(WieraController::Config&)> config_tweak = nullptr)
      : sim(seed),
        network(sim, make_topology()),
        controller(sim, network, registry,
                   controller_config(std::move(config_tweak))) {
    for (const char* node : kStorageNodes) {
      servers.push_back(
          std::make_unique<TieraServer>(sim, network, registry, node));
      controller.register_server(servers.back().get());
    }
  }

  static WieraController::Config controller_config(
      std::function<void(WieraController::Config&)> tweak = nullptr) {
    WieraController::Config config;
    config.node = "wiera-controller";
    config.heartbeat_interval = sec(1);
    config.lock_lease = sec(20);
    config.serve_lease = msec(1500);
    if (tweak) tweak(config);
    return config;
  }

  static net::Topology make_topology() {
    net::Topology topo = net::Topology::paper_default();
    topo.set_jitter_fraction(0.0);
    topo.add_node("wiera-controller", "aws-us-east");
    topo.add_node("tiera-us-west", "aws-us-west");
    topo.add_node("tiera-us-east", "aws-us-east");
    topo.add_node("tiera-eu-west", "aws-eu-west");
    topo.add_node("tiera-asia-east", "aws-asia-east");
    topo.add_node("client-us-west", "aws-us-west");
    topo.add_node("client-eu-west", "aws-eu-west");
    topo.add_node("client-asia-east", "aws-asia-east");
    return topo;
  }

  WieraController::StartOptions options_for(
      ConsistencyMode mode,
      std::function<void(WieraPeer::Config&)> peer_tweak) {
    WieraController::StartOptions options;
    auto doc = policy::parse_policy(policy_for(mode));
    EXPECT_TRUE(doc.ok()) << doc.status().to_string();
    options.global = std::move(doc).value();
    options.local_params["t"] = policy::Value::duration_of(sec(10));
    options.customize = [peer_tweak =
                             std::move(peer_tweak)](WieraPeer::Config& config) {
      config.local.tier_tweak = [](const std::string&, store::TierSpec& spec) {
        spec.jitter_fraction = 0;
      };
      config.replicate_retries = 8;
      config.replicate_backoff = msec(50);
      if (peer_tweak) peer_tweak(config);
    };
    return options;
  }
};

sim::FaultPlan plan_for(FaultClass fault, uint64_t seed) {
  sim::FaultPlan::RandomOptions options;
  // Only storage nodes are targeted: crashing the controller (lock service
  // + heartbeat authority) is a different availability model than the one
  // the per-mode invariants describe.
  for (const char* node : kStorageNodes) options.nodes.push_back(node);
  options.earliest = TimePoint::origin() + sec(3);
  options.latest = TimePoint::origin() + sec(18);
  switch (fault) {
    case FaultClass::kPartition:
      options.partitions = 1;
      break;
    case FaultClass::kCrash:
      options.crashes = 1;
      break;
    case FaultClass::kDropWindow:
      options.chaos_windows = 2;
      break;
    case FaultClass::kLatencySpike:
      options.latency_spikes = 2;
      break;
    case FaultClass::kBitRot:
      // Several rot events against the workload keys: some land on copies
      // that exist (detected + repaired), some on keys not yet stored
      // (no-ops) — both are part of the model.
      for (const char* key : kKeys) options.keys.push_back(key);
      options.bit_rots = 3;
      break;
    case FaultClass::kTornWrite:
      options.torn_writes = 1;
      break;
    case FaultClass::kMsgCorrupt:
      options.corrupt_windows = 2;
      options.corrupt_prob = 0.25;
      break;
    case FaultClass::kStutter:
      options.stutters = 1;
      break;
    case FaultClass::kFlakyLink:
      options.flaky_links = 1;
      break;
    case FaultClass::kSlowNode:
      options.slow_nodes = 1;
      break;
  }
  sim::FaultPlan plan = sim::FaultPlan::random(seed, options);
  if (fault == FaultClass::kMsgCorrupt) {
    // The random windows are node-scoped to storage nodes, where traffic is
    // dominated by heartbeats and scrub digests — corruption there proves
    // the control plane shrugs it off, but rarely exercises the data-plane
    // checksums. Pin one extra window to a client node (whose traffic is
    // exclusively puts/gets) so every schedule also corrupts payloads the
    // end-to-end checksums must catch.
    const char* const client_nodes[] = {"client-us-west", "client-eu-west",
                                        "client-asia-east"};
    plan.corrupting_chaos(client_nodes[seed % 3],
                          TimePoint::origin() + sec(4),
                          TimePoint::origin() + sec(16), 0.5);
  }
  return plan;
}

// Scrubbing on a short period plus inline read-repair: the self-healing
// configuration every corruption-class run uses.
std::function<void(WieraPeer::Config&)> self_heal_tweak() {
  return [](WieraPeer::Config& config) { config.scrub_interval = sec(3); };
}

// Replication coalescing armed (docs/PERFORMANCE.md). The flush interval is
// stretched so queued updates actually pool up into multi-op batches — at
// the default 100ms tick this workload rarely has two updates queued at
// once and the batched wire path would go untested.
// Health-scored failure detection armed (docs/HEALTH.md): φ-accrual over
// the heartbeat plus per-target latency EWMAs drive the probation
// lifecycle. Everything else keeps its default, so these runs measure what
// the detector adds, not a retuned cluster.
std::function<void(WieraController::Config&)> health_tweak() {
  return [](WieraController::Config& config) { config.health.enabled = true; };
}

std::function<void(WieraPeer::Config&)> batching_tweak(
    int batch_max = 4, Duration flush_interval = msec(600)) {
  return [batch_max, flush_interval](WieraPeer::Config& config) {
    config.replicate_batch_max = batch_max;
    config.queue_flush_interval = flush_interval;
  };
}

std::string hex_trace(uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

// WIERA_DUMP_TELEMETRY=1 (scripts/chaos_sweep.sh sets it when replaying a
// failing seed; `chaos_test --dump-telemetry` does the same) makes every
// run print its metrics snapshot and the span trees worth reading — the
// representative put plus every violation's trace — so a failing seed's
// replay is self-describing.
bool dump_telemetry_enabled() {
  const char* env = std::getenv("WIERA_DUMP_TELEMETRY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// WIERA_DUMP_TIMESERIES=1 (`chaos_test --dump-timeseries`) additionally arms
// the ObsPipeline scraper and the per-peer hot-key sketches for the run and
// prints TIMESERIES-SNAPSHOT / KEYSTATS blocks (docs/METRICS_PIPELINE.md).
// Off by default: an armed pipeline adds timer events, so replay hashes from
// a timeseries run only compare against other timeseries runs.
bool dump_timeseries_enabled() {
  const char* env = std::getenv("WIERA_DUMP_TIMESERIES");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void dump_telemetry(sim::Simulation& sim, std::set<uint64_t> traces) {
  std::printf("TELEMETRY-SNAPSHOT\n%s",
              sim.telemetry().registry().render_text().c_str());
  traces.erase(0);
  for (uint64_t id : traces) {
    obs::TraceView view(sim.telemetry().tracer(), id);
    if (view.empty()) continue;
    std::printf("TELEMETRY-TRACE trace=%s\n%s", hex_trace(id).c_str(),
                view.render().c_str());
  }
}

struct RunResult {
  std::vector<sim::OracleViolation> violations;
  // Mode-independent finals check: post-scrub replicas must agree on every
  // key, and on a value some client actually wrote.
  std::vector<sim::OracleViolation> convergence_violations;
  uint64_t trace_hash = 0;
  int64_t ops = 0;
  int64_t completed_ok = 0;
  int64_t events_applied = 0;
  // Integrity counters summed across storage peers (docs/INTEGRITY.md).
  int64_t tier_checksum_failures = 0;  // corrupt copies caught on tier read
  int64_t quarantined = 0;             // corrupt copies removed from tiers
  int64_t wire_checksum_failures = 0;  // corrupt payloads caught at receive
  int64_t repairs = 0;                 // read-repair refetches that landed
  int64_t scrub_repairs = 0;           // scrubber-driven repairs
  int64_t scrub_rounds = 0;
  int64_t torn_writes = 0;    // durable writes torn by a crash window
  int64_t torn_discards = 0;  // journalled tears discarded on restart
  int64_t corrupted_msgs = 0;  // messages the network chaos corrupted
  // Replication coalescing (docs/PERFORMANCE.md): wire batches sent and the
  // logical updates they carried. Zero unless the run arms batching_tweak()
  // — coalescing ships default-off.
  int64_t replication_batches = 0;
  int64_t replication_batched_ops = 0;
  // Gray-failure detection (docs/HEALTH.md). The probation counters stay
  // zero unless the run arms health_tweak() — health detection ships
  // default-off.
  int64_t probation_entries = 0;
  int64_t probation_exits = 0;
  int64_t primary_changes = 0;
  int64_t client_failovers = 0;
  // Rendered ATTRIBUTION-REPORT block; empty when the oracles were clean.
  std::string attribution;
};

// One client: alternating put/get rounds against the two workload keys,
// every outcome recorded into the oracle. Failed puts stay "maybe" ops;
// kNotFound is an (ok) absent read; other get errors are ignored reads.
sim::Task<void> client_workload(sim::Simulation& sim,
                                sim::ConsistencyOracle& oracle,
                                WieraClient& client, int index) {
  co_await sim.delay(msec(300) * static_cast<double>(index + 1));
  for (int round = 0; round < 8; ++round) {
    const std::string key = kKeys[round % 2];
    const std::string value =
        "c" + std::to_string(index) + "r" + std::to_string(round);
    int64_t put_op = oracle.begin_put(client.id(), key, value, sim.now());
    auto put = co_await client.put(key, Blob(value));
    oracle.set_op_trace(put_op, client.last_trace_id());
    oracle.end_put(put_op, sim.now(), put.ok(), put.ok() ? put->version : 0);

    co_await sim.delay(msec(400) + msec(90) * static_cast<double>(index));

    int64_t get_op = oracle.begin_get(client.id(), key, sim.now());
    auto got = co_await client.get(key);
    oracle.set_op_trace(get_op, client.last_trace_id());
    if (got.ok()) {
      oracle.end_get(get_op, sim.now(), true, got->value.to_string(),
                     got->version, got->served_by);
    } else if (got.status().code() == StatusCode::kNotFound) {
      oracle.end_get(get_op, sim.now(), true, "", 0, "");
    } else {
      oracle.end_get(get_op, sim.now(), false, "", 0, "");
    }

    co_await sim.delay(msec(800));
  }
}

// Record every storage peer's final state for the convergence check: the
// latest committed version's metadata plus the payload as actually served
// from local tiers (an unreadable payload records as "" and shows up as
// divergence — losing a committed payload is a consistency bug).
sim::Task<void> harvest_finals(WieraController& controller,
                               sim::ConsistencyOracle& oracle, bool& done) {
  for (const char* node : kStorageNodes) {
    WieraPeer* peer = controller.peer(node);
    if (peer == nullptr) continue;
    for (const char* key : kKeys) {
      const metadb::ObjectMeta* obj = peer->local().meta().find(key);
      const metadb::VersionMeta* vm =
          obj == nullptr ? nullptr : obj->latest_committed();
      if (vm == nullptr) {
        oracle.record_replica_value(node, key, 0, TimePoint(), "", "");
        continue;
      }
      auto value = co_await peer->local().get_version(key, vm->version);
      oracle.record_replica_value(
          node, key, vm->version, vm->last_modified, vm->origin,
          value.ok() ? value->value.to_string() : "");
    }
  }
  done = true;
}

RunResult run_chaos(
    ConsistencyMode mode, FaultClass fault, uint64_t seed,
    std::function<void(WieraPeer::Config&)> peer_tweak = {},
    bool telemetry_on = true,
    std::function<void(WieraController::Config&)> controller_tweak = {}) {
  ChaosCluster cluster(seed, std::move(controller_tweak));
  if (!telemetry_on) cluster.sim.telemetry().set_enabled(false);
  // Timeseries runs additionally arm the per-peer hot-key sketches; default
  // runs keep the caller's tweak so seed schedules stay byte-identical.
  if (dump_timeseries_enabled()) {
    peer_tweak = [inner = std::move(peer_tweak)](WieraPeer::Config& config) {
      config.key_stats.enabled = true;
      if (inner) inner(config);
    };
  }
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(mode, std::move(peer_tweak)));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  injector.arm(plan_for(fault, seed));

  // Metrics pipeline (docs/METRICS_PIPELINE.md): unarmed by default — it
  // spawns nothing and the schedule stays byte-identical.
  sim::ObsPipeline pipeline(cluster.sim);
  if (dump_timeseries_enabled()) {
    sim::ObsPipeline::Config obs_config;
    obs_config.interval = msec(100);
    obs_config.until = TimePoint::origin() + sec(40);
    pipeline.arm(obs_config);
  }

  sim::ConsistencyOracle oracle;
  std::vector<std::unique_ptr<WieraClient>> clients;
  const char* const client_nodes[] = {"client-us-west", "client-eu-west",
                                      "client-asia-east"};
  // Clients share the controller's health view (docs/HEALTH.md): a disabled
  // tracker records nothing and ranks every peer neutral, so default runs
  // keep the seed schedule; health_tweak() runs get health-ranked replica
  // ordering plus client-attempt latency feeds.
  WieraClient::Config client_config;
  client_config.health = &cluster.controller.health();
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<WieraClient>(
        cluster.sim, cluster.network, cluster.registry,
        "app-" + std::to_string(i), client_nodes[i], *peers, client_config));
    cluster.sim.spawn(
        client_workload(cluster.sim, oracle, *clients.back(), i));
  }

  // Workload and faults are over by ~30s even with full retry backoff;
  // running to 45s leaves room for crash recovery + catch-up to settle
  // before final replica states are harvested.
  cluster.sim.run_until(TimePoint(sec(45).us()));
  bool harvested = false;
  cluster.sim.spawn(harvest_finals(cluster.controller, oracle, harvested));
  cluster.sim.run_until(TimePoint(sec(50).us()));
  EXPECT_TRUE(harvested);

  RunResult result;
  result.violations = oracle.check(check_mode_for(mode));
  result.convergence_violations = oracle.check_convergence();
  result.trace_hash = cluster.sim.checker().trace_hash();
  result.ops = oracle.op_count();
  result.completed_ok = oracle.completed_ok_count();
  result.events_applied = injector.events_applied();
  // Integrity counters come straight from the metrics registry: every peer,
  // tier and client instrument lives there now, so a family sum is the
  // cluster-wide total (the per-object accessors are thin views over the
  // same series). Wire detections fold in the client-side family too — the
  // response leg is the last hop a corruption can hide on.
  const obs::Registry& reg = cluster.sim.telemetry().registry();
  result.tier_checksum_failures =
      reg.counter_sum("tiera_checksum_failures_total");
  result.quarantined = reg.counter_sum("tiera_quarantined_copies_total");
  result.wire_checksum_failures =
      reg.counter_sum("wiera_wire_checksum_failures_total") +
      reg.counter_sum("wiera_client_checksum_failures_total");
  result.repairs = reg.counter_sum("wiera_repairs_total");
  result.scrub_repairs = reg.counter_sum("wiera_scrub_repairs_total");
  result.scrub_rounds = reg.counter_sum("wiera_scrub_rounds_total");
  result.replication_batches =
      reg.counter_sum("wiera_replication_batches_total");
  result.replication_batched_ops =
      reg.counter_sum("wiera_replication_batched_ops_total");
  // Torn-write accounting stays at the storage-tier layer (not registered).
  for (const char* node : kStorageNodes) {
    WieraPeer* p = cluster.controller.peer(node);
    if (p == nullptr) continue;
    for (const std::string& label : p->local().tier_labels()) {
      const store::StorageTier* tier = p->local().tier_by_label(label);
      if (tier == nullptr) continue;
      result.torn_writes += tier->stats().torn_writes;
      result.torn_discards += tier->stats().torn_discards;
    }
  }
  result.corrupted_msgs = cluster.network.chaos_stats().corrupted;
  result.probation_entries = cluster.controller.health().probation_entries();
  result.probation_exits = cluster.controller.health().probation_exits();
  result.primary_changes = cluster.controller.primary_changes();
  for (const auto& client : clients) {
    result.client_failovers += client->failovers();
  }
  // Failure attribution (docs/METRICS_PIPELINE.md): any oracle violation
  // gets one report correlating the workload window with the injected fault
  // timeline, alert firings, per-peer hot keys and the worst spans.
  if (!result.violations.empty() || !result.convergence_violations.empty()) {
    sim::AttributionReport report;
    report.set_context("chaos",
                       std::string(consistency_mode_name(mode)) + ":" +
                           fault_class_name(fault),
                       seed, result.trace_hash);
    // The workload + fault plan both live inside the first 30s.
    report.set_window(TimePoint::origin(), TimePoint::origin() + sec(30));
    for (const auto& v : result.violations) {
      report.add_violation("consistency", v.key + ": " + v.message,
                           TimePoint::origin() + sec(30), v.trace_id);
    }
    for (const auto& v : result.convergence_violations) {
      report.add_violation("convergence", v.key + ": " + v.message,
                           TimePoint::origin() + sec(30), v.trace_id);
    }
    report.set_fault_timeline(injector.timeline());
    report.set_alerts(pipeline.alerts());
    const TimePoint now = cluster.sim.now();
    for (const char* node : kStorageNodes) {
      const WieraPeer* peer = cluster.controller.peer(node);
      if (peer != nullptr) report.add_key_stats(node, peer->key_stats(), now);
    }
    report.set_tracer(cluster.sim.telemetry().tracer());
    result.attribution = report.render_text();
    std::printf("%s", result.attribution.c_str());
  }

  if (dump_telemetry_enabled()) {
    std::set<uint64_t> traces{oracle.sample_put_trace()};
    for (const auto& v : result.violations) traces.insert(v.trace_id);
    for (const auto& v : result.convergence_violations)
      traces.insert(v.trace_id);
    dump_telemetry(cluster.sim, std::move(traces));
  }
  if (dump_timeseries_enabled() && pipeline.sampler() != nullptr) {
    std::printf("TIMESERIES-SNAPSHOT\n%s\n",
                pipeline.sampler()->render_json().c_str());
    const TimePoint now = cluster.sim.now();
    for (const char* node : kStorageNodes) {
      const WieraPeer* peer = cluster.controller.peer(node);
      if (peer == nullptr || peer->key_stats().total_accesses() == 0)
        continue;
      std::printf("KEYSTATS instance=%s %s\n", node,
                  peer->key_stats().render_json(now).c_str());
    }
  }
  return result;
}

int seed_count() {
  const char* env = std::getenv("WIERA_CHAOS_SEED_COUNT");
  if (env == nullptr) return 20;
  int n = std::atoi(env);
  return n > 0 ? n : 20;
}

// CI greps these counters out of a failing corruption sweep: how much
// corruption was injected, how much each detection layer caught, and how
// much the self-healing machinery put back.
void print_corruption_stats(ConsistencyMode mode, FaultClass fault,
                            uint64_t seed, const RunResult& r) {
  std::printf(
      "CORRUPTION-STATS seed=%llu mode=%s fault=%s tier_detected=%lld "
      "quarantined=%lld wire_detected=%lld repairs=%lld scrub_repairs=%lld "
      "scrub_rounds=%lld torn=%lld torn_discarded=%lld corrupted_msgs=%lld "
      "trace=%s\n",
      static_cast<unsigned long long>(seed),
      std::string(consistency_mode_name(mode)).c_str(),
      fault_class_name(fault),
      static_cast<long long>(r.tier_checksum_failures),
      static_cast<long long>(r.quarantined),
      static_cast<long long>(r.wire_checksum_failures),
      static_cast<long long>(r.repairs),
      static_cast<long long>(r.scrub_repairs),
      static_cast<long long>(r.scrub_rounds),
      static_cast<long long>(r.torn_writes),
      static_cast<long long>(r.torn_discards),
      static_cast<long long>(r.corrupted_msgs),
      hex_trace(r.trace_hash).c_str());
}

// CI greps these counters out of the gray-failure sweep: how often the
// detector moved a peer into/out of probation, and the two things a gray
// peer must never cause — a primary change or a storm of client failovers.
void print_health_stats(ConsistencyMode mode, FaultClass fault, uint64_t seed,
                        const RunResult& r) {
  std::printf(
      "HEALTH-STATS seed=%llu mode=%s fault=%s probation_entries=%lld "
      "probation_exits=%lld primary_changes=%lld client_failovers=%lld "
      "trace=%s\n",
      static_cast<unsigned long long>(seed),
      std::string(consistency_mode_name(mode)).c_str(),
      fault_class_name(fault), static_cast<long long>(r.probation_entries),
      static_cast<long long>(r.probation_exits),
      static_cast<long long>(r.primary_changes),
      static_cast<long long>(r.client_failovers),
      hex_trace(r.trace_hash).c_str());
}

// --------------------------------------------- brownout (overload) schedule
//
// The request-lifecycle acceptance scenario (docs/OVERLOAD.md): the primary's
// region answers 10x slower than the client op deadline while the control
// plane browns out (lease renewals dropped, so serve leases lapse and the
// BoundedStaleness degradation policy kicks in). Admission control, circuit
// breakers, retry budgets and hedged GETs are all armed. Every request must
// resolve — OK, stale, or a clean overload status — within the deadline plus
// one cross-region round trip, and the consistency oracle must stay clean.

constexpr Duration kBrownoutDeadline = sec(2);
constexpr Duration kBrownoutSlack = sec(1);  // ~one WAN RTT + scheduling

struct BrownoutCounts {
  int64_t started = 0;
  int64_t resolved = 0;
  int64_t late = 0;        // resolved after deadline + slack
  int64_t unexpected = 0;  // status outside the allowed overload set
  int64_t ok = 0;
  int64_t stale = 0;
  int64_t expired = 0;
  int64_t unavailable = 0;
  int64_t exhausted = 0;
  int64_t not_found = 0;
};

struct BrownoutResult {
  std::vector<sim::OracleViolation> violations;
  uint64_t trace_hash = 0;
  BrownoutCounts counts;
  int64_t shed = 0;          // rpc admission sheds across all peers
  int64_t rpc_expired = 0;   // rpc calls cut off at their deadline
  int64_t stale_serves = 0;  // degraded reads served by peers
  int64_t fast_fails = 0;    // breaker-open fast failures
  int64_t hedged = 0;
  int64_t hedged_wins = 0;
  int64_t budget_denied = 0;
  // Full registry snapshots taken at quiescence, in both expositions —
  // what a failing seed's dump prints and what CI asserts coverage on.
  std::string metrics_text;
  std::string metrics_json;
};

void note_outcome(BrownoutCounts& counts, Duration elapsed, StatusCode code,
                  bool stale) {
  counts.resolved++;
  if (elapsed > kBrownoutDeadline + kBrownoutSlack) counts.late++;
  switch (code) {
    case StatusCode::kOk:
      if (stale) {
        counts.stale++;
      } else {
        counts.ok++;
      }
      break;
    case StatusCode::kDeadlineExceeded:
      counts.expired++;
      break;
    case StatusCode::kUnavailable:
      counts.unavailable++;
      break;
    case StatusCode::kResourceExhausted:
      counts.exhausted++;
      break;
    case StatusCode::kNotFound:
      counts.not_found++;
      break;
    default:
      counts.unexpected++;
      break;
  }
}

// Like client_workload, but every op carries the client's op deadline and
// its outcome/latency is audited. Stale reads go into the oracle as
// unverified (ok=false) — the oracle must not treat a flagged-stale value
// as proof of the strong invariant.
sim::Task<void> brownout_workload(sim::Simulation& sim,
                                  sim::ConsistencyOracle& oracle,
                                  WieraClient& client, int index,
                                  BrownoutCounts& counts) {
  co_await sim.delay(msec(300) * static_cast<double>(index + 1));
  for (int round = 0; round < 12; ++round) {
    const std::string key = kKeys[round % 2];
    const std::string value =
        "c" + std::to_string(index) + "r" + std::to_string(round);

    counts.started++;
    TimePoint start = sim.now();
    int64_t put_op = oracle.begin_put(client.id(), key, value, sim.now());
    auto put = co_await client.put(key, Blob(value));
    oracle.set_op_trace(put_op, client.last_trace_id());
    oracle.end_put(put_op, sim.now(), put.ok(), put.ok() ? put->version : 0);
    note_outcome(counts, sim.now() - start,
                 put.ok() ? StatusCode::kOk : put.status().code(),
                 /*stale=*/false);

    co_await sim.delay(msec(150) + msec(40) * static_cast<double>(index));

    counts.started++;
    start = sim.now();
    int64_t get_op = oracle.begin_get(client.id(), key, sim.now());
    auto got = co_await client.get(key);
    oracle.set_op_trace(get_op, client.last_trace_id());
    if (got.ok() && !got->stale) {
      oracle.end_get(get_op, sim.now(), true, got->value.to_string(),
                     got->version, got->served_by);
    } else {
      // Stale serves and failures are unverified reads; a flagged-stale
      // value must never count as evidence for the strong invariant.
      oracle.end_get(get_op, sim.now(), false, "", 0, "");
    }
    note_outcome(counts, sim.now() - start,
                 got.ok() ? StatusCode::kOk : got.status().code(),
                 got.ok() && got->stale);

    co_await sim.delay(msec(650));
  }
}

BrownoutResult run_brownout(uint64_t seed, bool telemetry_on = true) {
  ChaosCluster cluster(seed);
  if (!telemetry_on) cluster.sim.telemetry().set_enabled(false);
  auto degradation = policy::parse_policy(policy::builtin::bounded_staleness());
  EXPECT_TRUE(degradation.ok()) << degradation.status().to_string();
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(
                ConsistencyMode::kPrimaryBackupSync,
                [&degradation](WieraPeer::Config& config) {
                  config.max_inflight = 3;
                  config.max_queue = 2;
                  // Hair-trigger breakers: one burned forward deadline opens
                  // the circuit, and the open window outlasts a full deadline
                  // burn (2s) so another client's put through the same backup
                  // fast-fails instead of parking for its own deadline.
                  config.breaker_failures = 1;
                  config.breaker_open_for = sec(4);
                  config.retry_budget_per_sec = 2;
                  config.retry_budget_capacity = 5;
                  config.degradation_policy = degradation.value();
                }));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  std::string primary = kStorageNodes[0];
  for (const char* node : kStorageNodes) {
    WieraPeer* p = cluster.controller.peer(node);
    if (p != nullptr && p->is_primary()) primary = node;
  }

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  // Data plane: every message touching the primary is 10x the op deadline.
  // The controller has no ping deadline (seed behaviour), so its serial
  // heartbeat loop parks behind the first spiked ping for the whole spike:
  // no failover rescues the cluster, and backups keep forwarding puts into
  // the slow primary — exactly the regime circuit breakers exist for.
  // (PingDeadlineKeepsFailureDetectionLive covers the configured escape.)
  plan.latency_spike(primary, sec(20), TimePoint::origin() + sec(4),
                     TimePoint::origin() + sec(24));
  // Control plane: lease renewals dropped mid-spike, so every strong-mode
  // replica's serve lease lapses and BoundedStaleness takes over its reads.
  // The window starts well after the spike — if it covered the spike start,
  // every gate would close before a single put-forward could feed the
  // breakers.
  plan.message_chaos("wiera-controller", TimePoint::origin() + sec(14),
                     TimePoint::origin() + sec(21), /*drop_prob=*/1.0,
                     /*dup_prob=*/0.0);
  // Light drop/dup/reordering everywhere: per-seed variation for the sweep.
  plan.message_chaos("", TimePoint::origin() + sec(4),
                     TimePoint::origin() + sec(24), /*drop_prob=*/0.03,
                     /*dup_prob=*/0.03, msec(30));
  injector.arm(std::move(plan));

  WieraClient::Config client_config;
  client_config.op_deadline = kBrownoutDeadline;
  client_config.retry_budget_per_sec = 2;
  client_config.retry_budget_capacity = 5;
  client_config.hedge_gets = true;
  client_config.hedge_min_samples = 3;
  client_config.hedge_min_delay = msec(10);

  sim::ConsistencyOracle oracle;
  BrownoutCounts counts;
  std::vector<std::unique_ptr<WieraClient>> clients;
  const char* const client_nodes[] = {"client-us-west", "client-eu-west",
                                      "client-asia-east"};
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<WieraClient>(
        cluster.sim, cluster.network, cluster.registry,
        "app-" + std::to_string(i), client_nodes[i], *peers, client_config));
    cluster.sim.spawn(brownout_workload(cluster.sim, oracle, *clients.back(),
                                        i, counts));
  }

  // Worst case every one of 12 rounds burns its full deadline twice plus
  // inter-op delays: comfortably inside 60s of virtual time.
  cluster.sim.run_until(TimePoint(sec(60).us()));
  bool harvested = false;
  cluster.sim.spawn(harvest_finals(cluster.controller, oracle, harvested));
  cluster.sim.run_until(TimePoint(sec(62).us()));
  EXPECT_TRUE(harvested);

  BrownoutResult result;
  result.violations = oracle.check(sim::CheckMode::kPrimaryOrder);
  result.trace_hash = cluster.sim.checker().trace_hash();
  result.counts = counts;
  // Overload counters via registry reads. Family sums work where only one
  // side of the protocol can increment the series (clients never shed or
  // hedge-serve); rpc expirations are summed per storage node by label
  // because the client endpoints count their own deadline cut-offs in the
  // same family.
  const obs::Registry& reg = cluster.sim.telemetry().registry();
  result.shed = reg.counter_sum("rpc_calls_shed_total");
  result.stale_serves = reg.counter_sum("wiera_stale_serves_total");
  result.fast_fails = reg.counter_sum("wiera_breaker_fast_fails_total");
  result.hedged = reg.counter_sum("wiera_client_hedged_gets_total");
  result.hedged_wins = reg.counter_sum("wiera_client_hedged_wins_total");
  for (const char* node : kStorageNodes) {
    result.rpc_expired +=
        reg.counter_value("rpc_calls_expired_total", {{"node", node}});
    WieraPeer* p = cluster.controller.peer(node);
    if (p != nullptr) result.budget_denied += p->retry_budget_denials();
  }
  for (const auto& client : clients) {
    result.budget_denied += client->retry_budget_denials();
  }
  result.metrics_text = reg.render_text();
  result.metrics_json = reg.render_json();
  if (dump_telemetry_enabled()) {
    std::set<uint64_t> traces{oracle.sample_put_trace()};
    for (const auto& v : result.violations) traces.insert(v.trace_id);
    dump_telemetry(cluster.sim, std::move(traces));
  }
  return result;
}

// CI greps these counters out of a failing brownout sweep.
void print_brownout_stats(uint64_t seed, const BrownoutResult& r) {
  std::printf(
      "BROWNOUT-STATS seed=%llu ok=%lld stale=%lld expired=%lld "
      "unavailable=%lld exhausted=%lld notfound=%lld shed=%lld "
      "rpc_expired=%lld hedged=%lld hedged_wins=%lld fastfail=%lld "
      "budget_denied=%lld trace=%s\n",
      static_cast<unsigned long long>(seed),
      static_cast<long long>(r.counts.ok),
      static_cast<long long>(r.counts.stale),
      static_cast<long long>(r.counts.expired),
      static_cast<long long>(r.counts.unavailable),
      static_cast<long long>(r.counts.exhausted),
      static_cast<long long>(r.counts.not_found),
      static_cast<long long>(r.shed), static_cast<long long>(r.rpc_expired),
      static_cast<long long>(r.hedged),
      static_cast<long long>(r.hedged_wins),
      static_cast<long long>(r.fast_fails),
      static_cast<long long>(r.budget_denied),
      hex_trace(r.trace_hash).c_str());
}

TEST(ChaosBrownoutTest, EveryRequestResolvesUnderBrownoutAcrossSeeds) {
  const int seeds = seed_count();
  int64_t total_stale = 0;
  int64_t total_expired = 0;
  int64_t total_hedged = 0;
  int64_t total_fast_fails = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    BrownoutResult r = run_brownout(static_cast<uint64_t>(seed));
    print_brownout_stats(static_cast<uint64_t>(seed), r);
    EXPECT_EQ(r.counts.resolved, r.counts.started)
        << "seed " << seed << ": an op hung past quiescence";
    EXPECT_EQ(r.counts.late, 0)
        << "seed " << seed << ": op resolved after deadline + slack";
    EXPECT_EQ(r.counts.unexpected, 0)
        << "seed " << seed << ": status outside the allowed overload set";
    EXPECT_GT(r.counts.ok, 0) << "seed " << seed << ": no op completed";
    if (!r.violations.empty()) {
      ADD_FAILURE() << "CHAOS-FAIL seed=" << seed
                    << " mode=PrimaryBackupConsistency fault=brownout"
                    << " trace=" << hex_trace(r.trace_hash) << "\n"
                    << sim::ConsistencyOracle::describe(r.violations);
    }
    total_stale += r.counts.stale;
    total_expired += r.counts.expired;
    total_hedged += r.hedged;
    total_fast_fails += r.fast_fails;
  }
  EXPECT_GT(total_expired, 0) << "brownout never expired a single request";
  EXPECT_GT(total_stale, 0) << "degradation policy never served stale";
  EXPECT_GT(total_hedged, 0) << "hedging never triggered";
  EXPECT_GT(total_fast_fails, 0) << "no breaker ever fast-failed";
}

TEST(ChaosBrownoutTest, TraceHashReplayDeterministicWithOverloadActive) {
  BrownoutResult a = run_brownout(/*seed=*/7);
  BrownoutResult b = run_brownout(/*seed=*/7);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.counts.ok, b.counts.ok);
  EXPECT_EQ(a.counts.stale, b.counts.stale);
  EXPECT_EQ(a.counts.expired, b.counts.expired);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.fast_fails, b.fast_fails);
  EXPECT_EQ(a.hedged, b.hedged);
  BrownoutResult c = run_brownout(/*seed=*/8);
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

// Telemetry must be schedule-invisible (docs/DETERMINISM.md): disabling it
// (no span retention, no journal IO) leaves the determinism hash and every
// outcome byte-identical. Metrics always record — they are pure memory —
// so even the rendered snapshot matches.
TEST(ChaosBrownoutTest, TelemetryOffLeavesScheduleAndHashIdentical) {
  BrownoutResult on = run_brownout(/*seed=*/7);
  BrownoutResult off = run_brownout(/*seed=*/7, /*telemetry_on=*/false);
  EXPECT_EQ(on.trace_hash, off.trace_hash);
  EXPECT_EQ(on.counts.ok, off.counts.ok);
  EXPECT_EQ(on.counts.stale, off.counts.stale);
  EXPECT_EQ(on.counts.expired, off.counts.expired);
  EXPECT_EQ(on.shed, off.shed);
  EXPECT_EQ(on.rpc_expired, off.rpc_expired);
  EXPECT_EQ(on.fast_fails, off.fast_fails);
  EXPECT_EQ(on.hedged, off.hedged);
  EXPECT_EQ(on.metrics_text, off.metrics_text);
}

// Acceptance snapshot: a brownout seed's registry covers the whole
// overload/degradation surface in both expositions. Families created
// unconditionally (endpoint/peer/client/tier constructors) must always be
// present; the breaker-transition family only materialises once a breaker
// actually trips.
TEST(ChaosBrownoutTest, RegistrySnapshotCoversOverloadCounters) {
  BrownoutResult r = run_brownout(/*seed=*/3);
  ASSERT_FALSE(r.metrics_text.empty());
  for (const char* name :
       {"rpc_calls_handled_total", "rpc_calls_shed_total",
        "rpc_calls_expired_total", "wiera_breaker_fast_fails_total",
        "wiera_stale_serves_total", "wiera_replication_retries_total",
        "wiera_client_hedged_gets_total", "wiera_client_failovers_total",
        "wiera_client_put_latency_us", "tiera_put_latency_us",
        "tiera_checksum_failures_total"}) {
    EXPECT_NE(r.metrics_text.find(name), std::string::npos)
        << "text snapshot missing " << name;
    EXPECT_NE(r.metrics_json.find(name), std::string::npos)
        << "json snapshot missing " << name;
  }
  if (r.fast_fails > 0) {
    EXPECT_NE(r.metrics_text.find("wiera_breaker_transitions_total"),
              std::string::npos)
        << "breaker fast-failed but no transition series was recorded";
  }
}

// --------------------------------------------------------------- span trees
//
// Whole-tree assertions on the Dapper-style traces (docs/OBSERVABILITY.md):
// a client op must reassemble into a single rooted tree with no orphan or
// duplicate spans — across hedging, replication retries and deadline
// expiry — and every span must be closed once the op resolves.

TEST(TelemetryTraceTest, CrossRegionPutProducesWellFormedSpanTree) {
  ChaosCluster cluster(/*seed=*/11);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupSync, {}));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  WieraClient eu(cluster.sim, cluster.network, cluster.registry, "app-eu",
                 "client-eu-west", *peers);
  auto one_put = [](sim::Simulation& sim, WieraClient& c) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    auto put = co_await c.put("k0", Blob("v"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
  };
  cluster.sim.spawn(one_put(cluster.sim, eu));
  cluster.sim.run_until(TimePoint(sec(8).us()));

  const obs::Tracer& tracer = cluster.sim.telemetry().tracer();
  const uint64_t trace_id = eu.last_trace_id();
  ASSERT_NE(trace_id, 0u);
  obs::TraceView view(tracer, trace_id);
  ASSERT_FALSE(view.empty());
  EXPECT_TRUE(view.well_formed()) << view.render();
  ASSERT_NE(view.root(), nullptr);
  EXPECT_EQ(view.root()->name, "client.put");
  EXPECT_EQ(view.root()->host, "app-eu");
  EXPECT_EQ(view.root()->status, "ok");

  // Per-hop latency breakdown: every span closed, none starting before the
  // root, and the hop inventory of a forwarded + sync-replicated put —
  // client rpc into the nearest peer, a server span per handled rpc, one
  // tier write at the primary, and replication fan-out to the backups.
  int rpc_calls = 0, rpc_servers = 0, tier_puts = 0, replications = 0;
  for (const obs::Span* span : view.spans()) {
    EXPECT_FALSE(span->open()) << span->name << " never closed";
    EXPECT_GE(span->start.us(), view.root()->start.us()) << span->name;
    if (span->name.rfind("rpc.call ", 0) == 0) rpc_calls++;
    if (span->name.rfind("rpc.server ", 0) == 0) rpc_servers++;
    if (span->name == "tiera.put") tier_puts++;
    if (span->name.rfind("peer.replicate ", 0) == 0) replications++;
  }
  EXPECT_GE(rpc_calls, 2) << view.render();
  EXPECT_GE(rpc_servers, 2) << view.render();
  EXPECT_EQ(tier_puts, 1) << view.render();
  EXPECT_GE(replications, 1) << view.render();
  EXPECT_EQ(tracer.open_count(), 0);
}

TEST(TelemetryTraceTest, HedgedGetTraceShowsBothAttempts) {
  ChaosCluster cluster(/*seed=*/13);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupSync, {}));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  // Slow the client's nearest peer so the hedge timer — armed from the
  // warm-up get's latency sample — fires and the backup attempt wins.
  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.latency_spike("tiera-eu-west", sec(5), TimePoint::origin() + sec(2),
                     TimePoint::origin() + sec(20));
  injector.arm(std::move(plan));

  WieraClient::Config config;
  config.hedge_gets = true;
  config.hedge_min_samples = 1;
  config.hedge_min_delay = msec(10);
  WieraClient eu(cluster.sim, cluster.network, cluster.registry, "app-eu",
                 "client-eu-west", *peers, config);

  uint64_t get_trace = 0;
  auto workload = [&get_trace](sim::Simulation& sim,
                               WieraClient& c) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    auto put = co_await c.put("k0", Blob("v"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
    auto warm = co_await c.get("k0");  // latency sample for the hedge timer
    EXPECT_TRUE(warm.ok()) << warm.status().to_string();
    co_await sim.delay(sec(2));  // t=3s: the spike is active
    auto got = co_await c.get("k0");
    EXPECT_TRUE(got.ok()) << got.status().to_string();
    get_trace = c.last_trace_id();
  };
  cluster.sim.spawn(workload(cluster.sim, eu));
  cluster.sim.run_until(TimePoint(sec(40).us()));

  ASSERT_GT(eu.hedged_gets(), 0);
  ASSERT_NE(get_trace, 0u);
  obs::TraceView view(cluster.sim.telemetry().tracer(), get_trace);
  EXPECT_TRUE(view.well_formed()) << view.render();
  ASSERT_NE(view.root(), nullptr);
  // Both racing attempts hang off the same root — the spiked primary path
  // and the hedge — and the root records that the hedge fired and won.
  int attempts = 0;
  bool hedged = false, hedge_won = false;
  for (const obs::Span* span : view.spans()) {
    if (span->name == "rpc.call peer.client_get") attempts++;
  }
  for (const std::string& a : view.root()->annotations) {
    if (a == "hedged=true") hedged = true;
    if (a == "hedge_won=true") hedge_won = true;
  }
  EXPECT_GE(attempts, 2) << view.render();
  EXPECT_TRUE(hedged) << view.render();
  EXPECT_TRUE(hedge_won) << view.render();
  EXPECT_EQ(cluster.sim.telemetry().tracer().open_count(), 0);
}

TEST(TelemetryTraceTest, DeadlineExpiryStillClosesEverySpan) {
  ChaosCluster cluster(/*seed=*/17);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupSync, {}));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  std::string primary = kStorageNodes[0];
  for (const char* node : kStorageNodes) {
    WieraPeer* p = cluster.controller.peer(node);
    if (p != nullptr && p->is_primary()) primary = node;
  }

  // Every message touching the primary takes 5s against a 500ms op
  // deadline: the put must resolve kDeadlineExceeded at the client while
  // the late-arriving request is expired server-side — and both halves of
  // the trace must still close.
  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.latency_spike(primary, sec(5), TimePoint::origin() + sec(2),
                     TimePoint::origin() + sec(10));
  injector.arm(std::move(plan));

  WieraClient::Config config;
  config.op_deadline = msec(500);
  WieraClient us(cluster.sim, cluster.network, cluster.registry, "app-us",
                 "client-us-west", *peers, config);

  bool expired = false;
  auto workload = [&expired](sim::Simulation& sim,
                             WieraClient& c) -> sim::Task<void> {
    co_await sim.delay(sec(3));  // inside the spike window
    auto put = co_await c.put("k0", Blob("v"));
    expired = !put.ok() &&
              put.status().code() == StatusCode::kDeadlineExceeded;
  };
  cluster.sim.spawn(workload(cluster.sim, us));
  cluster.sim.run_until(TimePoint(sec(30).us()));

  EXPECT_TRUE(expired);
  const obs::Tracer& tracer = cluster.sim.telemetry().tracer();
  obs::TraceView view(tracer, us.last_trace_id());
  ASSERT_FALSE(view.empty());
  EXPECT_TRUE(view.well_formed()) << view.render();
  ASSERT_NE(view.root(), nullptr);
  EXPECT_EQ(view.root()->status, "DEADLINE_EXCEEDED") << view.render();
  for (const obs::Span* span : view.spans()) {
    EXPECT_FALSE(span->open()) << span->name << " never closed";
  }
  EXPECT_EQ(tracer.open_count(), 0) << "spans leaked past quiescence: "
                                    << ::testing::PrintToString(
                                           tracer.open_span_names());
}

TEST(TelemetryTraceTest, RetriedReplicationKeepsOneSpanPerTarget) {
  ChaosCluster cluster(/*seed=*/19);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupSync, {}));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  std::string primary = kStorageNodes[0];
  for (const char* node : kStorageNodes) {
    WieraPeer* p = cluster.controller.peer(node);
    if (p != nullptr && p->is_primary()) primary = node;
  }
  std::string victim;
  for (const char* node : kStorageNodes) {
    if (primary != node) {
      victim = node;
      break;
    }
  }

  // Drop every message to one backup for 600ms around the put: the sync
  // replication to it must retry through the window (exponential backoff
  // from 50ms reaches past 600ms well inside the retry cap) and the whole
  // retry loop must stay inside ONE span per target, annotated per attempt
  // — never one span per attempt.
  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.message_chaos(victim, TimePoint::origin() + sec(2),
                     TimePoint::origin() + msec(2600), /*drop_prob=*/1.0,
                     /*dup_prob=*/0.0);
  injector.arm(std::move(plan));

  WieraClient us(cluster.sim, cluster.network, cluster.registry, "app-us",
                 "client-us-west", *peers);
  bool put_ok = false;
  auto workload = [&put_ok](sim::Simulation& sim,
                            WieraClient& c) -> sim::Task<void> {
    co_await sim.delay(msec(2050));  // inside the drop window
    auto put = co_await c.put("k0", Blob("v"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
    put_ok = put.ok();
  };
  cluster.sim.spawn(workload(cluster.sim, us));
  cluster.sim.run_until(TimePoint(sec(20).us()));

  ASSERT_TRUE(put_ok);
  obs::TraceView view(cluster.sim.telemetry().tracer(), us.last_trace_id());
  EXPECT_TRUE(view.well_formed()) << view.render();
  std::map<std::string, int> per_target;
  bool victim_retried = false;
  for (const obs::Span* span : view.spans()) {
    if (span->name.rfind("peer.replicate ", 0) != 0) continue;
    per_target[span->name]++;
    if (span->name == "peer.replicate " + victim) {
      for (const std::string& a : span->annotations) {
        if (a.rfind("retry=", 0) == 0) victim_retried = true;
      }
      EXPECT_EQ(span->status, "ok") << view.render();
    }
  }
  // One span per replication target (the policy's replica set, not
  // necessarily every peer), each covering its whole retry loop.
  ASSERT_GE(per_target.size(), 2u) << view.render();
  for (const auto& [name, count] : per_target) {
    EXPECT_EQ(count, 1) << name << " span duplicated across retries\n"
                        << view.render();
  }
  EXPECT_TRUE(victim_retried) << view.render();
  EXPECT_EQ(cluster.sim.telemetry().tracer().open_count(), 0);
}

TEST(TelemetryTraceTest, BatchedFlushRacingDropsClosesEverySpan) {
  // A burst of puts pools into the primary's queue and flushes as coalesced
  // batches while one replica drops everything: the batch send must retry
  // inside its one wire span, every per-op span must close with its op's
  // outcome and carry the batched=N annotation, and nothing may stay open
  // once the retries resolve.
  ChaosCluster cluster(/*seed=*/23);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kEventual,
                                batching_tweak(4, msec(400))));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.message_chaos("tiera-asia-east", TimePoint::origin() + sec(1),
                     TimePoint::origin() + msec(2800), /*drop_prob=*/1.0,
                     /*dup_prob=*/0.0);
  injector.arm(std::move(plan));

  WieraClient us(cluster.sim, cluster.network, cluster.registry, "app-us",
                 "client-us-west", *peers);
  int puts_ok = 0;
  auto workload = [&puts_ok](sim::Simulation& sim,
                             WieraClient& c) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    for (int i = 0; i < 6; ++i) {
      auto put = co_await c.put(kKeys[i % 2], Blob("v" + std::to_string(i)));
      EXPECT_TRUE(put.ok()) << put.status().to_string();
      if (put.ok()) puts_ok++;
    }
  };
  cluster.sim.spawn(workload(cluster.sim, us));
  cluster.sim.run_until(TimePoint(sec(30).us()));
  ASSERT_EQ(puts_ok, 6);

  const obs::Tracer& tracer = cluster.sim.telemetry().tracer();
  int batch_spans = 0;
  int op_spans = 0;
  bool coalesced = false;
  bool batch_retried = false;
  // Span ids are sequential from 1; evicted ids return nullptr.
  const uint64_t total = tracer.span_count() +
                         static_cast<uint64_t>(tracer.dropped());
  for (uint64_t id = 1; id <= total; ++id) {
    const obs::Span* span = tracer.find_span(id);
    if (span == nullptr) continue;
    EXPECT_FALSE(span->open()) << span->name << " never closed";
    if (span->name.rfind("peer.replicate_batch ", 0) == 0) {
      batch_spans++;
      for (const std::string& a : span->annotations) {
        if (a.rfind("batched=", 0) == 0 && a != "batched=1") coalesced = true;
        if (a.rfind("retry=", 0) == 0) batch_retried = true;
      }
    } else if (span->name.rfind("peer.replicate ", 0) == 0) {
      op_spans++;
      bool annotated = false;
      for (const std::string& a : span->annotations) {
        if (a.rfind("batched=", 0) == 0) annotated = true;
      }
      EXPECT_TRUE(annotated)
          << span->name << " missing batched= (op sent outside a batch?)";
    }
  }
  EXPECT_GT(batch_spans, 0) << "no batch wire span recorded";
  // One per-op span per update per target, exactly as the per-op path.
  EXPECT_GE(op_spans, 6);
  EXPECT_TRUE(coalesced) << "no batch ever carried more than one update";
  EXPECT_TRUE(batch_retried) << "drop window never forced a batch retry";
  EXPECT_EQ(tracer.open_count(), 0)
      << ::testing::PrintToString(tracer.open_span_names());
}

// ------------------------------------------------------- randomized sweeps

struct ChaosCase {
  ConsistencyMode mode;
  FaultClass fault;
};

class ChaosSuite : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSuite, OracleHoldsAcrossSeeds) {
  const ChaosCase c = GetParam();
  const int seeds = seed_count();
  for (int seed = 1; seed <= seeds; ++seed) {
    RunResult r = run_chaos(c.mode, c.fault, static_cast<uint64_t>(seed));
    EXPECT_GT(r.completed_ok, 0) << "seed " << seed << ": no op completed";
    EXPECT_GT(r.events_applied, 0) << "seed " << seed << ": no fault fired";
    if (!r.violations.empty()) {
      ADD_FAILURE() << "CHAOS-FAIL seed=" << seed << " mode="
                    << consistency_mode_name(c.mode)
                    << " fault=" << fault_class_name(c.fault)
                    << " trace=" << hex_trace(r.trace_hash) << "\n"
                    << sim::ConsistencyOracle::describe(r.violations);
    }
  }
}

std::string case_name(const ::testing::TestParamInfo<ChaosCase>& info) {
  std::string mode(consistency_mode_name(info.param.mode));
  for (char& ch : mode) {
    if (ch == '-') ch = '_';
  }
  return mode + "_" + fault_class_name(info.param.fault);
}

INSTANTIATE_TEST_SUITE_P(
    AllModesAllFaults, ChaosSuite,
    ::testing::Values(
        ChaosCase{ConsistencyMode::kMultiPrimaries, FaultClass::kPartition},
        ChaosCase{ConsistencyMode::kMultiPrimaries, FaultClass::kCrash},
        ChaosCase{ConsistencyMode::kMultiPrimaries, FaultClass::kDropWindow},
        ChaosCase{ConsistencyMode::kMultiPrimaries,
                  FaultClass::kLatencySpike},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync, FaultClass::kPartition},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync, FaultClass::kCrash},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync,
                  FaultClass::kDropWindow},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync,
                  FaultClass::kLatencySpike},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kPartition},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kCrash},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kDropWindow},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kLatencySpike}),
    case_name);

// --------------------------------------------------------- batching sweeps
//
// Replication coalescing ships with replicate_batch_max = 1, so every suite
// above exercises the per-op wire path. This sweep re-runs the queue-driven
// mode's fault matrix with coalescing armed: same oracle, same invariants —
// a batch is an encoding of the queue, never a semantic change. Eventual is
// the mode whose every put rides the flusher, so it is where batches form.

class BatchingChaosSuite : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(BatchingChaosSuite, OracleHoldsWithCoalescingArmed) {
  const ChaosCase c = GetParam();
  const int seeds = seed_count();
  int64_t batches = 0;
  int64_t batched_ops = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    RunResult r = run_chaos(c.mode, c.fault, static_cast<uint64_t>(seed),
                            batching_tweak());
    batches += r.replication_batches;
    batched_ops += r.replication_batched_ops;
    EXPECT_GT(r.completed_ok, 0) << "seed " << seed << ": no op completed";
    EXPECT_GT(r.events_applied, 0) << "seed " << seed << ": no fault fired";
    if (!r.violations.empty()) {
      ADD_FAILURE() << "CHAOS-FAIL seed=" << seed << " mode="
                    << consistency_mode_name(c.mode)
                    << " fault=" << fault_class_name(c.fault)
                    << " batching=on trace=" << hex_trace(r.trace_hash)
                    << "\n"
                    << sim::ConsistencyOracle::describe(r.violations);
    }
  }
  // The sweep only proves something if coalescing actually engaged.
  EXPECT_GT(batches, 0) << "no batch sent across " << seeds << " seeds";
  EXPECT_GE(batched_ops, batches);
}

INSTANTIATE_TEST_SUITE_P(
    EventualAllFaults, BatchingChaosSuite,
    ::testing::Values(
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kPartition},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kCrash},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kDropWindow},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kLatencySpike}),
    case_name);

// ------------------------------------------------------- corruption sweeps
//
// Every consistency mode against every integrity fault class, with the
// self-healing machinery (periodic scrub + inline read-repair) enabled.
// Two oracle gates per seed: no client GET ever observes a corrupt payload
// (the per-mode invariant check — a rotted read surfaces as "a value nobody
// wrote"), and after the last scrub all replicas are digest-identical on a
// client-written value (check_convergence).

class CorruptionSuite : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(CorruptionSuite, NoCorruptReadsAndEventualRepairAcrossSeeds) {
  const ChaosCase c = GetParam();
  const int seeds = seed_count();
  int64_t total_detected = 0;
  int64_t total_healed = 0;
  int64_t total_corrupted_msgs = 0;
  int64_t total_scrub_rounds = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    RunResult r = run_chaos(c.mode, c.fault, static_cast<uint64_t>(seed),
                            self_heal_tweak());
    EXPECT_GT(r.completed_ok, 0) << "seed " << seed << ": no op completed";
    EXPECT_GT(r.events_applied, 0) << "seed " << seed << ": no fault fired";
    if (!r.violations.empty()) {
      print_corruption_stats(c.mode, c.fault, static_cast<uint64_t>(seed), r);
      ADD_FAILURE() << "CHAOS-FAIL seed=" << seed
                    << " mode=" << consistency_mode_name(c.mode)
                    << " fault=" << fault_class_name(c.fault)
                    << " trace=" << hex_trace(r.trace_hash) << "\n"
                    << sim::ConsistencyOracle::describe(r.violations);
    }
    if (!r.convergence_violations.empty()) {
      print_corruption_stats(c.mode, c.fault, static_cast<uint64_t>(seed), r);
      ADD_FAILURE() << "CHAOS-FAIL seed=" << seed
                    << " mode=" << consistency_mode_name(c.mode)
                    << " fault=" << fault_class_name(c.fault)
                    << " trace=" << hex_trace(r.trace_hash)
                    << " (post-scrub replicas not digest-identical)\n"
                    << sim::ConsistencyOracle::describe(
                           r.convergence_violations);
    }
    total_detected += r.tier_checksum_failures + r.wire_checksum_failures;
    total_healed += r.repairs + r.scrub_repairs + r.torn_discards;
    total_corrupted_msgs += r.corrupted_msgs;
    total_scrub_rounds += r.scrub_rounds;
  }
  EXPECT_GT(total_scrub_rounds, 0) << "scrubber never ran";
  switch (c.fault) {
    case FaultClass::kBitRot:
      // Across the sweep some rot events must land on live copies, be
      // detected by a checksum layer, and be healed from a peer.
      EXPECT_GT(total_detected, 0) << "no bit rot was ever detected";
      EXPECT_GT(total_healed, 0) << "no rotted copy was ever repaired";
      break;
    case FaultClass::kMsgCorrupt:
      EXPECT_GT(total_corrupted_msgs, 0) << "chaos never corrupted a message";
      EXPECT_GT(total_detected, 0) << "no corrupt payload was ever detected";
      break;
    default:
      // Torn-write crashes tear a durable write only when one is in flight
      // at the crash instant — too rare to assert per-sweep; the targeted
      // TornWriteDiscardedOnRestart regression pins that path down.
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModesAllCorruptionFaults, CorruptionSuite,
    ::testing::Values(
        ChaosCase{ConsistencyMode::kMultiPrimaries, FaultClass::kBitRot},
        ChaosCase{ConsistencyMode::kMultiPrimaries, FaultClass::kTornWrite},
        ChaosCase{ConsistencyMode::kMultiPrimaries, FaultClass::kMsgCorrupt},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync, FaultClass::kBitRot},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync,
                  FaultClass::kTornWrite},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync,
                  FaultClass::kMsgCorrupt},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kBitRot},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kTornWrite},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kMsgCorrupt}),
    case_name);

// ----------------------------------------------------- gray-failure sweeps
//
// Every consistency mode against every gray fault class (docs/HEALTH.md),
// with health-scored failure detection armed. A gray peer is degraded, not
// dead: it answers every binary liveness probe while serving late, lossy,
// or slow. The acceptance bar is twofold — the per-mode oracle stays clean,
// and the detector never escalates: a single gray peer must not trip
// failover (zero primary changes), because probation demotes ranking and
// fan-out order without ever narrowing membership.

class GrayFailureSuite : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(GrayFailureSuite, SingleGrayPeerNeverTripsFailoverAcrossSeeds) {
  const ChaosCase c = GetParam();
  const int seeds = seed_count();
  int64_t total_probations = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    RunResult r = run_chaos(c.mode, c.fault, static_cast<uint64_t>(seed), {},
                            /*telemetry_on=*/true, health_tweak());
    print_health_stats(c.mode, c.fault, static_cast<uint64_t>(seed), r);
    EXPECT_GT(r.completed_ok, 0) << "seed " << seed << ": no op completed";
    EXPECT_GT(r.events_applied, 0) << "seed " << seed << ": no fault fired";
    EXPECT_EQ(r.primary_changes, 0)
        << "seed " << seed << ": a gray (degraded, not dead) peer tripped "
        << "failover";
    if (!r.violations.empty()) {
      ADD_FAILURE() << "CHAOS-FAIL seed=" << seed
                    << " mode=" << consistency_mode_name(c.mode)
                    << " fault=" << fault_class_name(c.fault)
                    << " trace=" << hex_trace(r.trace_hash) << "\n"
                    << sim::ConsistencyOracle::describe(r.violations);
    }
    total_probations += r.probation_entries;
  }
  // A sustained 8x slowdown sits far past degraded_factor: across the sweep
  // the latency-EWMA signal must put someone into probation. The other two
  // classes can stay below the thresholds on short windows (a stutter only
  // produces late samples at thaw; a flaky link mostly costs retries), so
  // they assert only the never-escalate side.
  if (c.fault == FaultClass::kSlowNode) {
    EXPECT_GT(total_probations, 0)
        << "an 8x-slow node never entered probation across " << seeds
        << " seeds";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModesAllGrayFaults, GrayFailureSuite,
    ::testing::Values(
        ChaosCase{ConsistencyMode::kMultiPrimaries, FaultClass::kStutter},
        ChaosCase{ConsistencyMode::kMultiPrimaries, FaultClass::kFlakyLink},
        ChaosCase{ConsistencyMode::kMultiPrimaries, FaultClass::kSlowNode},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync, FaultClass::kStutter},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync,
                  FaultClass::kFlakyLink},
        ChaosCase{ConsistencyMode::kPrimaryBackupSync,
                  FaultClass::kSlowNode},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kStutter},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kFlakyLink},
        ChaosCase{ConsistencyMode::kEventual, FaultClass::kSlowNode}),
    case_name);

// ------------------------------------------------------------ determinism

TEST(ChaosDeterminismTest, SameSeedSameTraceHash) {
  RunResult a = run_chaos(ConsistencyMode::kEventual, FaultClass::kDropWindow,
                          /*seed=*/7);
  RunResult b = run_chaos(ConsistencyMode::kEventual, FaultClass::kDropWindow,
                          /*seed=*/7);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.completed_ok, b.completed_ok);
  RunResult c = run_chaos(ConsistencyMode::kEventual, FaultClass::kDropWindow,
                          /*seed=*/8);
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

TEST(ChaosDeterminismTest, SameSeedSameTraceHashWithScrubAndRepairActive) {
  // The self-healing paths (scrub rounds, digest exchanges, read-repair
  // refetches) are themselves folded into the trace: a replay with bit rot
  // plus an active scrubber must reproduce hash-identically.
  RunResult a = run_chaos(ConsistencyMode::kEventual, FaultClass::kBitRot,
                          /*seed=*/7, self_heal_tweak());
  RunResult b = run_chaos(ConsistencyMode::kEventual, FaultClass::kBitRot,
                          /*seed=*/7, self_heal_tweak());
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.completed_ok, b.completed_ok);
  EXPECT_EQ(a.tier_checksum_failures, b.tier_checksum_failures);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.scrub_repairs, b.scrub_repairs);
  EXPECT_EQ(a.scrub_rounds, b.scrub_rounds);
  RunResult c = run_chaos(ConsistencyMode::kEventual, FaultClass::kBitRot,
                          /*seed=*/8, self_heal_tweak());
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

TEST(ChaosDeterminismTest, SameSeedSameTraceHashWithHealthDetectionArmed) {
  // The detector's whole pipeline — ping feeds, latency EWMAs, probation
  // transitions, health-ranked client ordering, probation-last fan-out — is
  // schedule-affecting state, so a replay with a gray fault and health
  // armed must reproduce hash-identically, down to the probation counters.
  RunResult a = run_chaos(ConsistencyMode::kEventual, FaultClass::kSlowNode,
                          /*seed=*/7, {}, /*telemetry_on=*/true,
                          health_tweak());
  RunResult b = run_chaos(ConsistencyMode::kEventual, FaultClass::kSlowNode,
                          /*seed=*/7, {}, /*telemetry_on=*/true,
                          health_tweak());
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.completed_ok, b.completed_ok);
  EXPECT_EQ(a.probation_entries, b.probation_entries);
  EXPECT_EQ(a.probation_exits, b.probation_exits);
  EXPECT_EQ(a.client_failovers, b.client_failovers);
  RunResult c = run_chaos(ConsistencyMode::kEventual, FaultClass::kSlowNode,
                          /*seed=*/8, {}, /*telemetry_on=*/true,
                          health_tweak());
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

TEST(ChaosDeterminismTest, SameSeedSameTraceHashWithBatchingArmed) {
  // Coalesced flushes (chunking, size-triggered rounds, batch retries) are
  // all folded into the trace: a replay with batching armed must reproduce
  // hash-identically, down to how many batches were cut and what they held.
  RunResult a = run_chaos(ConsistencyMode::kEventual, FaultClass::kDropWindow,
                          /*seed=*/7, batching_tweak());
  RunResult b = run_chaos(ConsistencyMode::kEventual, FaultClass::kDropWindow,
                          /*seed=*/7, batching_tweak());
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.completed_ok, b.completed_ok);
  EXPECT_EQ(a.replication_batches, b.replication_batches);
  EXPECT_EQ(a.replication_batched_ops, b.replication_batched_ops);
  EXPECT_GT(a.replication_batches, 0);
  RunResult c = run_chaos(ConsistencyMode::kEventual, FaultClass::kDropWindow,
                          /*seed=*/8, batching_tweak());
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

// ------------------------------------------------------------ mutation test

// Acceptance gate for the oracle itself: break the LWW comparator on one
// replica (version-only, ignoring the timestamp/origin tiebreak) and the
// eventual-consistency check must observe divergence after quiescence.
//
// The scenario forces a version tie: two clients in different regions write
// the same key 50ms apart — within the queue-flush interval, so each
// replica assigns version 1 to its own write. Correct LWW picks the later
// timestamp everywhere; the broken replica (which ignores timestamps on
// version ties) keeps its stale local value and diverges.
RunResult run_lww_scenario(
    std::function<void(WieraPeer::Config&)> peer_tweak) {
  ChaosCluster cluster(/*seed=*/9);
  auto peers = cluster.controller.start_instances(
      "w1",
      cluster.options_for(ConsistencyMode::kEventual, std::move(peer_tweak)));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  sim::ConsistencyOracle oracle;
  WieraClient eu(cluster.sim, cluster.network, cluster.registry, "app-eu",
                 "client-eu-west", *peers);
  WieraClient us(cluster.sim, cluster.network, cluster.registry, "app-us",
                 "client-us-west", *peers);
  auto do_put = [](sim::Simulation& sim, sim::ConsistencyOracle& oracle,
                   WieraClient& c, std::string value) -> sim::Task<void> {
    int64_t op = oracle.begin_put(c.id(), "k0", value, sim.now());
    auto put = co_await c.put("k0", Blob(value));
    oracle.end_put(op, sim.now(), put.ok(), put.ok() ? put->version : 0);
    EXPECT_TRUE(put.ok()) << put.status().to_string();
  };
  auto writers = [&](sim::Simulation& sim) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    co_await do_put(sim, oracle, eu, "stale-loser");
    co_await sim.delay(msec(50));
    co_await do_put(sim, oracle, us, "true-winner");
  };
  cluster.sim.spawn(writers(cluster.sim));
  cluster.sim.run_until(TimePoint(sec(10).us()));

  bool harvested = false;
  cluster.sim.spawn(harvest_finals(cluster.controller, oracle, harvested));
  cluster.sim.run_until(TimePoint(sec(11).us()));
  EXPECT_TRUE(harvested);

  RunResult result;
  result.violations = oracle.check(sim::CheckMode::kEventual);
  result.trace_hash = cluster.sim.checker().trace_hash();
  result.ops = oracle.op_count();
  result.completed_ok = oracle.completed_ok_count();
  return result;
}

TEST(ChaosMutationTest, BrokenLwwComparatorIsCaught) {
  RunResult broken = run_lww_scenario([](WieraPeer::Config& config) {
    if (config.instance_id != "tiera-eu-west") return;
    config.local.lww_override = [](const tiera::LwwSample& incoming,
                                   const tiera::LwwSample& local) {
      return incoming.version > local.version;
    };
  });
  EXPECT_FALSE(broken.violations.empty())
      << "oracle failed to notice a deliberately broken LWW comparator";

  // Control: the same scenario with the real comparator converges.
  RunResult honest = run_lww_scenario({});
  EXPECT_TRUE(honest.violations.empty())
      << sim::ConsistencyOracle::describe(honest.violations);
}

// Acceptance gate for the integrity oracle: disable checksum verification
// on one replica and rot its stored copy. The crippled replica serves the
// rotted payload (its wire checksum is recomputed over the bytes it sends,
// so the client's transit check passes — exactly the blind spot read-path
// verification exists to cover), and the oracle must flag the read as a
// value nobody wrote. The control run (verification on) detects the rot on
// read, repairs from a peer, and stays clean.
RunResult run_bit_rot_scenario(
    std::function<void(WieraPeer::Config&)> peer_tweak) {
  ChaosCluster cluster(/*seed=*/12);
  auto peers = cluster.controller.start_instances(
      "w1",
      cluster.options_for(ConsistencyMode::kEventual, std::move(peer_tweak)));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.bit_rot("tiera-eu-west", "k0", TimePoint::origin() + sec(5));
  injector.arm(std::move(plan));

  sim::ConsistencyOracle oracle;
  WieraClient eu(cluster.sim, cluster.network, cluster.registry, "app-eu",
                 "client-eu-west", *peers);
  auto workload = [](sim::Simulation& sim, sim::ConsistencyOracle& oracle,
                     WieraClient& c) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    int64_t put_op = oracle.begin_put(c.id(), "k0", "good-value", sim.now());
    auto put = co_await c.put("k0", Blob("good-value"));
    oracle.end_put(put_op, sim.now(), put.ok(), put.ok() ? put->version : 0);
    EXPECT_TRUE(put.ok()) << put.status().to_string();

    co_await sim.delay(sec(5));  // t=6s: eu-west's copy rotted at t=5
    int64_t get_op = oracle.begin_get(c.id(), "k0", sim.now());
    auto got = co_await c.get("k0");
    if (got.ok()) {
      oracle.end_get(get_op, sim.now(), true, got->value.to_string(),
                     got->version, got->served_by);
    } else {
      oracle.end_get(get_op, sim.now(), false, "", 0, "");
    }
  };
  cluster.sim.spawn(workload(cluster.sim, oracle, eu));
  cluster.sim.run_until(TimePoint(sec(10).us()));

  bool harvested = false;
  cluster.sim.spawn(harvest_finals(cluster.controller, oracle, harvested));
  cluster.sim.run_until(TimePoint(sec(11).us()));
  EXPECT_TRUE(harvested);

  RunResult result;
  result.violations = oracle.check(sim::CheckMode::kEventual);
  result.convergence_violations = oracle.check_convergence();
  result.trace_hash = cluster.sim.checker().trace_hash();
  WieraPeer* peer = cluster.controller.peer("tiera-eu-west");
  if (peer != nullptr) {
    result.tier_checksum_failures = peer->local().checksum_failures();
    result.repairs = peer->repairs();
  }
  return result;
}

TEST(ChaosMutationTest, DisabledChecksumVerificationIsCaught) {
  RunResult crippled = run_bit_rot_scenario([](WieraPeer::Config& config) {
    if (config.instance_id != "tiera-eu-west") return;
    config.local.verify_checksums = false;
  });
  EXPECT_FALSE(crippled.violations.empty())
      << "oracle failed to notice a replica serving rotted payloads";
  EXPECT_FALSE(crippled.convergence_violations.empty())
      << "convergence check missed the unrepaired rotted replica";
  EXPECT_EQ(crippled.tier_checksum_failures, 0)
      << "verification was supposed to be disabled";

  // Control: with verification on, the rot is caught on read, repaired
  // from a peer, and no client ever sees it.
  RunResult honest = run_bit_rot_scenario({});
  EXPECT_TRUE(honest.violations.empty())
      << sim::ConsistencyOracle::describe(honest.violations);
  EXPECT_TRUE(honest.convergence_violations.empty())
      << sim::ConsistencyOracle::describe(honest.convergence_violations);
  EXPECT_GT(honest.tier_checksum_failures, 0) << "rot was never detected";
  EXPECT_GT(honest.repairs, 0) << "rot was never repaired";
}

// ----------------------------------------------------- targeted regressions

// A crashed backup loses its volatile tier contents; after restart the
// controller-driven catch-up resync must restore the latest committed
// version so the backup serves it again locally.
TEST(ChaosRegressionTest, BackupCatchesUpAfterRestart) {
  ChaosCluster cluster(/*seed=*/42);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kEventual, {}));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.crash("tiera-eu-west", TimePoint::origin() + sec(5),
             TimePoint::origin() + sec(8));
  injector.arm(std::move(plan));

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  auto writer = [](sim::Simulation& sim, WieraClient& c) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    auto v1 = co_await c.put("k", Blob("before-crash"));
    EXPECT_TRUE(v1.ok()) << v1.status().to_string();
    co_await sim.delay(sec(5));  // t=6s: eu-west is down
    auto v2 = co_await c.put("k", Blob("during-crash"));
    EXPECT_TRUE(v2.ok()) << v2.status().to_string();
  };
  cluster.sim.spawn(writer(cluster.sim, client));
  cluster.sim.run_until(TimePoint(sec(20).us()));

  WieraPeer* eu = cluster.controller.peer("tiera-eu-west");
  ASSERT_NE(eu, nullptr);
  EXPECT_FALSE(eu->recovering());
  EXPECT_GE(eu->catch_ups_completed(), 1);
  EXPECT_GE(cluster.controller.recoveries_completed(), 1);

  const metadb::ObjectMeta* obj = eu->local().meta().find("k");
  ASSERT_NE(obj, nullptr);
  const metadb::VersionMeta* vm = obj->latest_committed();
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->version, 2);

  bool read_done = false;
  auto reader = [](WieraPeer& peer, bool& done) -> sim::Task<void> {
    auto got = co_await peer.local().get("k");
    EXPECT_TRUE(got.ok()) << got.status().to_string();
    if (got.ok()) {
      EXPECT_EQ(got->value.to_string(), "during-crash");
      EXPECT_EQ(got->version, 2);
    }
    done = true;
  };
  cluster.sim.spawn(reader(*eu, read_done));
  cluster.sim.run_until(TimePoint(sec(21).us()));
  EXPECT_TRUE(read_done);
}

// ----------------------------------------------- mid-flush primary failover
//
// PrimaryBackupAsync with coalescing armed: the primary acks a burst of
// puts, the flusher has a batch on the wire, and the primary crashes with
// that batch in flight and more acked updates still queued. The builtin
// primary-backup policy derives the Sync protocol, so the tweak overrides
// the mode — async-with-a-primary is the only configuration where an
// acknowledged-but-unflushed update can die with its node. The queue is
// volatile and dies in the crash; the primary's durable tier keeps the
// committed versions, so after restart + catch-up the scrubber's digest
// exchange must re-propagate them and every replica must converge on the
// newest client-written value. Replayable as `--seed N --plan async:midflush`
// (the MODE token is ignored, like brownout).
struct MidFlushResult {
  std::vector<sim::OracleViolation> convergence_violations;
  uint64_t trace_hash = 0;
  int64_t puts_ok = 0;
  int64_t batches = 0;
  int64_t open_spans = 0;
  std::vector<std::string> open_span_names;
};

MidFlushResult run_midflush(uint64_t seed) {
  ChaosCluster cluster(seed);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupAsync,
                                [](WieraPeer::Config& config) {
                                  config.mode =
                                      ConsistencyMode::kPrimaryBackupAsync;
                                  config.replicate_batch_max = 4;
                                  config.queue_flush_interval = msec(200);
                                  config.scrub_interval = sec(2);
                                }));
  EXPECT_TRUE(peers.ok()) << peers.status().to_string();
  if (!peers.ok()) return {};
  cluster.controller.start();

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  // The burst below fills the primary's queue at t=1s; the size-triggered
  // flush has cross-region sends in flight when the crash lands at 1.12s,
  // and the updates past the first chunk are still queued — they die with
  // the node and must come back from its durable tier.
  plan.crash("tiera-us-west", TimePoint::origin() + msec(1120),
             TimePoint::origin() + sec(6));
  injector.arm(std::move(plan));

  sim::ConsistencyOracle oracle;
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  int64_t puts_ok = 0;
  auto writer = [&oracle, &puts_ok](sim::Simulation& sim,
                                    WieraClient& c) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    for (int i = 0; i < 6; ++i) {
      const std::string key = kKeys[i % 2];
      const std::string value = "burst" + std::to_string(i);
      int64_t op = oracle.begin_put(c.id(), key, value, sim.now());
      auto put = co_await c.put(key, Blob(value));
      oracle.set_op_trace(op, c.last_trace_id());
      oracle.end_put(op, sim.now(), put.ok(), put.ok() ? put->version : 0);
      if (put.ok()) puts_ok++;
    }
  };
  cluster.sim.spawn(writer(cluster.sim, client));

  // Crash at 1.12s, restart at 6s, catch-up plus a few scrub rounds: by 25s
  // the re-propagation has long settled.
  cluster.sim.run_until(TimePoint(sec(25).us()));
  bool harvested = false;
  cluster.sim.spawn(harvest_finals(cluster.controller, oracle, harvested));
  cluster.sim.run_until(TimePoint(sec(26).us()));
  EXPECT_TRUE(harvested);

  MidFlushResult result;
  result.convergence_violations = oracle.check_convergence();
  result.trace_hash = cluster.sim.checker().trace_hash();
  result.puts_ok = puts_ok;
  result.batches = cluster.sim.telemetry().registry().counter_sum(
      "wiera_replication_batches_total");
  // Periodic background work (a scrub round) can legitimately be mid-flight
  // at the cutoff instant; what must never stay open is the flush machinery
  // — batch wire spans, per-op spans, flush roots — long after the last
  // replication resolved.
  for (const std::string& name :
       cluster.sim.telemetry().tracer().open_span_names()) {
    if (name.rfind("peer.replicate", 0) == 0 ||
        name.rfind("peer.flush", 0) == 0) {
      result.open_spans++;
      result.open_span_names.push_back(name);
    }
  }
  if (dump_telemetry_enabled()) {
    std::set<uint64_t> traces{client.last_trace_id()};
    for (const auto& v : result.convergence_violations)
      traces.insert(v.trace_id);
    dump_telemetry(cluster.sim, std::move(traces));
  }
  return result;
}

TEST(ChaosRegressionTest, MidFlushPrimaryFailoverConverges) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    MidFlushResult r = run_midflush(seed);
    EXPECT_GE(r.puts_ok, 4) << "seed " << seed
                            << ": burst did not land before the crash";
    EXPECT_GT(r.batches, 0) << "seed " << seed << ": no batch was in flight";
    EXPECT_EQ(r.open_spans, 0)
        << "seed " << seed << ": crash leaked replication spans: "
        << ::testing::PrintToString(r.open_span_names);
    if (!r.convergence_violations.empty()) {
      ADD_FAILURE() << "CHAOS-FAIL seed=" << seed
                    << " plan=async:midflush trace="
                    << hex_trace(r.trace_hash) << "\n"
                    << sim::ConsistencyOracle::describe(
                           r.convergence_violations);
    }
  }
  // The schedule must replay hash-identically for --plan async:midflush.
  MidFlushResult a = run_midflush(1);
  MidFlushResult b = run_midflush(1);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

// §4.4: a crashed closest peer costs the client exactly one failover — the
// demotion is remembered, so subsequent operations go straight to the next
// peer instead of paying a failed attempt each time.
TEST(ChaosRegressionTest, FailoverCountsOncePerPrimaryCrash) {
  ChaosCluster cluster(/*seed=*/43);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupSync, {}));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.crash("tiera-us-west", TimePoint::origin() + sec(5),
             TimePoint::origin() + sec(8));
  injector.arm(std::move(plan));

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  ASSERT_EQ(client.closest_peer(), "tiera-us-west");

  int ok_reads = 0;
  auto workload = [](sim::Simulation& sim, WieraClient& c,
                     int& reads) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    auto put = co_await c.put("k", Blob("v"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
    EXPECT_EQ(c.failovers(), 0);
    // Reads spanning the crash window: the first one after the crash pays
    // the failover; everything later uses the demoted order.
    for (int i = 0; i < 40; ++i) {
      co_await sim.delay(msec(300));
      auto got = co_await c.get("k");
      if (got.ok()) reads++;
    }
  };
  cluster.sim.spawn(workload(cluster.sim, client, ok_reads));
  cluster.sim.run_until(TimePoint(sec(20).us()));

  EXPECT_EQ(client.failovers(), 1);
  EXPECT_GE(ok_reads, 35);
}

// Leased locks (ZooKeeper ephemeral-node semantics): a holder that crashes
// mid-critical-section is evicted after the lease, so waiters on the same
// lock make progress instead of deadlocking.
TEST(ChaosRegressionTest, LockLeaseReleasesCrashedHolder) {
  sim::Simulation sim(7);
  net::Topology topo;
  topo.add_datacenter("us-east", net::Provider::kAws, "us-east");
  topo.add_datacenter("us-west", net::Provider::kAws, "us-west");
  topo.set_rtt("us-east", "us-west", msec(70));
  topo.set_jitter_fraction(0.0);
  topo.add_node("zk", "us-east");
  topo.add_node("node-a", "us-west");
  topo.add_node("node-b", "us-east");
  net::Network network(sim, std::move(topo));
  rpc::Registry registry;
  rpc::Endpoint zk(network, registry, "zk");
  coord::LockService service(sim, zk);
  service.set_lease(sec(2));
  service.start_lease_reaper(msec(500));

  rpc::Endpoint a(network, registry, "node-a");
  rpc::Endpoint b(network, registry, "node-b");

  // node-a acquires and "crashes" (never releases, stops responding).
  auto holder = [](rpc::Endpoint& ep) -> sim::Task<void> {
    coord::LockClient client(ep, "zk");
    Status st = co_await client.acquire("chaos-lock");
    EXPECT_TRUE(st.ok()) << st.to_string();
  };
  TimePoint granted_at;
  bool acquired = false;
  auto waiter = [](sim::Simulation& s, rpc::Endpoint& ep, TimePoint& at,
                   bool& ok) -> sim::Task<void> {
    co_await s.delay(msec(500));
    coord::LockClient client(ep, "zk");
    Status st = co_await client.acquire("chaos-lock");
    EXPECT_TRUE(st.ok()) << st.to_string();
    at = s.now();
    ok = true;
    (void)co_await client.release("chaos-lock");
  };
  sim.spawn(holder(a));
  sim.spawn(waiter(sim, b, granted_at, acquired));
  sim.run_until(TimePoint(sec(10).us()));

  ASSERT_TRUE(acquired);
  EXPECT_EQ(service.leases_expired(), 1);
  // Eviction happens at lease expiry (2s after the grant), not before.
  EXPECT_GT(granted_at.us(), sec(2).us());
  EXPECT_LT(granted_at.us(), sec(4).us());
  EXPECT_EQ(service.holder("chaos-lock"), "");
}

// An ENOSPC window on the primary's tiers makes strong-mode puts fail with
// a permanent (non-retryable) error while the window lasts, and the
// history stays primary-ordered: failed puts are maybe ops, never
// committed-version collisions.
TEST(ChaosRegressionTest, TierEnospcFailsPutsCleanly) {
  ChaosCluster cluster(/*seed=*/44);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupSync, {}));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.tier_fault("tiera-us-west", /*tier_label=*/"", /*slowdown=*/1.0,
                  /*enospc=*/true, TimePoint::origin() + sec(3),
                  TimePoint::origin() + sec(6));
  injector.arm(std::move(plan));

  sim::ConsistencyOracle oracle;
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-us-west", *peers);
  int failed_puts = 0;
  auto workload = [](sim::Simulation& sim, sim::ConsistencyOracle& oracle,
                     WieraClient& c, int& failed) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    for (int i = 0; i < 8; ++i) {
      const std::string value = "v" + std::to_string(i);
      int64_t op = oracle.begin_put(c.id(), "k", value, sim.now());
      auto put = co_await c.put("k", Blob(value));
      oracle.end_put(op, sim.now(), put.ok(), put.ok() ? put->version : 0);
      if (!put.ok()) failed++;
      co_await sim.delay(msec(700));
    }
  };
  cluster.sim.spawn(workload(cluster.sim, oracle, client, failed_puts));
  cluster.sim.run_until(TimePoint(sec(15).us()));

  EXPECT_GT(failed_puts, 0);
  EXPECT_LT(failed_puts, 8);
  auto violations = oracle.check(sim::CheckMode::kPrimaryOrder);
  EXPECT_TRUE(violations.empty())
      << sim::ConsistencyOracle::describe(violations);
}

// A durable write whose commit lands inside a torn-write crash window is
// staged in the tier's shadow journal (kDataLoss to the writer, previous
// committed copy untouched) and discarded by the recovery pass the chaos
// host runs at restart — never published as a truncated payload.
TEST(ChaosRegressionTest, TornWriteDiscardedOnRestart) {
  ChaosCluster cluster(/*seed=*/46);
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kEventual, {}));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.torn_write("tiera-eu-west", TimePoint::origin() + sec(5),
                  TimePoint::origin() + sec(8));
  injector.arm(std::move(plan));

  WieraPeer* eu = cluster.controller.peer("tiera-eu-west");
  ASSERT_NE(eu, nullptr);
  store::StorageTier* durable = nullptr;
  for (const std::string& label : eu->local().tier_labels()) {
    store::StorageTier* tier = eu->local().tier_by_label(label);
    if (tier != nullptr && tier->spec().kind != store::TierKind::kMemory) {
      durable = tier;
    }
  }
  ASSERT_NE(durable, nullptr) << "policy deploys no durable tier";

  // A committed durable copy from before the crash, then a write whose
  // commit instant lands inside the [5s, 8s) crash window.
  auto writer = [](sim::Simulation& sim,
                   store::StorageTier& tier) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    Status before = co_await tier.put("probe#1", Blob(Bytes(4096, 1)));
    EXPECT_TRUE(before.ok()) << before.to_string();
    co_await sim.at(TimePoint::origin() + sec(5) + msec(500));
    Status torn = co_await tier.put("probe#1", Blob(Bytes(4096, 2)));
    EXPECT_EQ(torn.code(), StatusCode::kDataLoss) << torn.to_string();
  };
  cluster.sim.spawn(writer(cluster.sim, *durable));
  cluster.sim.run_until(TimePoint(sec(20).us()));

  EXPECT_EQ(durable->stats().torn_writes, 1);
  // The restart event drove recover_tiers(): the journalled tear is gone.
  EXPECT_EQ(durable->stats().torn_discards, 1);
  EXPECT_FALSE(eu->recovering());

  // The pre-crash committed copy is what the tier still serves.
  bool read_done = false;
  auto reader = [](store::StorageTier& tier, bool& done) -> sim::Task<void> {
    auto got = co_await tier.get("probe#1");
    EXPECT_TRUE(got.ok()) << got.status().to_string();
    if (got.ok()) {
      EXPECT_EQ(got->size(), 4096u);
      EXPECT_EQ(got->data()[0], 1);
    }
    done = true;
  };
  cluster.sim.spawn(reader(*durable, read_done));
  cluster.sim.run_until(TimePoint(sec(21).us()));
  EXPECT_TRUE(read_done);
}

// BoundedStaleness degradation (docs/OVERLOAD.md): when a strong-mode
// replica's serve lease lapses (control plane unreachable) it may answer
// reads from its local copy — flagged stale — while the copy is younger
// than the policy's staleness bound. Puts never degrade. Once the control
// plane returns and recovery completes, reads are strong (unflagged) again.
TEST(ChaosRegressionTest, LeaseLapseServesBoundedStaleReads) {
  ChaosCluster cluster(/*seed=*/45);
  auto degradation = policy::parse_policy(policy::builtin::bounded_staleness());
  ASSERT_TRUE(degradation.ok()) << degradation.status().to_string();
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupSync,
                                [&degradation](WieraPeer::Config& config) {
                                  config.degradation_policy =
                                      degradation.value();
                                }));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  // Drop everything touching the controller: leases lapse cluster-wide but
  // client <-> replica traffic is untouched.
  plan.message_chaos("wiera-controller", TimePoint::origin() + sec(3),
                     TimePoint::origin() + sec(9), /*drop_prob=*/1.0,
                     /*dup_prob=*/0.0);
  injector.arm(std::move(plan));

  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-eu-west", *peers);
  bool stale_seen = false;
  bool put_failed_in_window = false;
  bool fresh_after_recovery = false;
  auto workload = [](sim::Simulation& sim, WieraClient& c, bool& stale,
                     bool& put_failed, bool& fresh) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    auto put = co_await c.put("k", Blob("fresh"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();

    co_await sim.delay(sec(5) + msec(500));  // t=6.5s: leases lapsed
    auto got = co_await c.get("k");
    EXPECT_TRUE(got.ok()) << got.status().to_string();
    if (got.ok()) {
      EXPECT_TRUE(got->stale) << "lease-lapsed read not flagged stale";
      EXPECT_EQ(got->value.to_string(), "fresh");
      EXPECT_EQ(got->version, 1);
      stale = got->stale;
    }
    // Writes have no degraded path: a put in the same window must fail.
    auto blocked = co_await c.put("k", Blob("rejected"));
    put_failed = !blocked.ok();

    co_await sim.delay(sec(18) + msec(500));  // t=25s: recovered
    auto after = co_await c.get("k");
    EXPECT_TRUE(after.ok()) << after.status().to_string();
    if (after.ok()) {
      EXPECT_FALSE(after->stale) << "recovered replica still serving stale";
      fresh = !after->stale;
    }
  };
  cluster.sim.spawn(workload(cluster.sim, client, stale_seen,
                             put_failed_in_window, fresh_after_recovery));
  cluster.sim.run_until(TimePoint(sec(26).us()));

  EXPECT_TRUE(stale_seen);
  EXPECT_TRUE(put_failed_in_window);
  EXPECT_TRUE(fresh_after_recovery);
}

TEST(ChaosRegressionTest, PingDeadlineKeepsFailureDetectionLive) {
  // A latency-spiked peer parks the controller's serial heartbeat loop
  // behind one ping for the whole spike when pings carry no deadline (the
  // brownout suite exploits exactly that). With ping_deadline set, failure
  // detection keeps its cadence: a primary that crashes *while another peer
  // is spiked* is still replaced within a few heartbeats (§4.4), and
  // deadline-bounded writes succeed long before the spike ends.
  ChaosCluster cluster(/*seed=*/11, [](WieraController::Config& config) {
    config.ping_deadline = msec(900);
  });
  auto peers = cluster.controller.start_instances(
      "w1", cluster.options_for(ConsistencyMode::kPrimaryBackupSync, nullptr));
  ASSERT_TRUE(peers.ok()) << peers.status().to_string();
  cluster.controller.start();

  std::string primary = kStorageNodes[0];
  for (const char* node : kStorageNodes) {
    WieraPeer* p = cluster.controller.peer(node);
    if (p != nullptr && p->is_primary()) primary = node;
  }
  std::string spiked;
  for (const char* node : kStorageNodes) {
    if (primary != node) {
      spiked = node;
      break;
    }
  }

  ChaosHost host(cluster.network, cluster.controller);
  sim::FaultInjector injector(cluster.sim, host);
  sim::FaultPlan plan;
  plan.latency_spike(spiked, sec(20), TimePoint::origin() + sec(2),
                     TimePoint::origin() + sec(30));
  // Restart lands after the run window: the crashed primary stays gone.
  plan.crash(primary, TimePoint::origin() + sec(5),
             TimePoint::origin() + sec(40));
  injector.arm(std::move(plan));

  WieraClient::Config client_config;
  client_config.op_deadline = sec(2);
  WieraClient client(cluster.sim, cluster.network, cluster.registry, "app",
                     "client-eu-west", *peers, client_config);

  bool baseline_ok = false;
  bool write_after_failover = false;
  auto workload = [](sim::Simulation& sim, WieraClient& c, bool& baseline,
                     bool& after) -> sim::Task<void> {
    co_await sim.delay(sec(1));
    auto put = co_await c.put("k", Blob("v1"));
    EXPECT_TRUE(put.ok()) << put.status().to_string();
    baseline = put.ok();

    co_await sim.delay(sec(11));  // t=12: several heartbeats past the lapse
    auto again = co_await c.put("k", Blob("v2"));
    EXPECT_TRUE(again.ok()) << again.status().to_string();
    after = again.ok();
    auto got = co_await c.get("k");
    EXPECT_TRUE(got.ok()) << got.status().to_string();
    if (got.ok()) {
      EXPECT_EQ(got->value.to_string(), "v2");
      EXPECT_FALSE(got->stale);
    }
  };
  cluster.sim.spawn(
      workload(cluster.sim, client, baseline_ok, write_after_failover));
  cluster.sim.run_until(TimePoint(sec(15).us()));

  EXPECT_TRUE(baseline_ok);
  EXPECT_TRUE(write_after_failover);

  bool promoted_elsewhere = false;
  for (const char* node : kStorageNodes) {
    if (primary == node || spiked == node) continue;
    WieraPeer* p = cluster.controller.peer(node);
    if (p != nullptr && p->is_primary()) promoted_elsewhere = true;
  }
  EXPECT_TRUE(promoted_elsewhere)
      << "no healthy peer was promoted while " << spiked << " was spiked";
}

// Heartbeat flap damping (docs/HEALTH.md): one chaos-dropped ping round
// must not trigger failover when ping_failure_threshold > 1. The drop
// window is sized so no peer can miss two *consecutive* pings (a failed
// ping costs its 900ms deadline, pushing the peer's next ping well past the
// window), so threshold 2 absorbs the flap completely while the identical
// schedule under the seed threshold (1: first failure counts) declares
// peers down and pays the down/recover round trip.
TEST(ChaosRegressionTest, FlapDampingAbsorbsOneDroppedPingRound) {
  const auto run = [](int threshold) {
    ChaosCluster cluster(/*seed=*/17,
                         [threshold](WieraController::Config& config) {
                           config.ping_deadline = msec(900);
                           config.ping_failure_threshold = threshold;
                           // Lease-lapse gating would defer down-handling
                           // past a single dropped round on its own; clear
                           // it so this test isolates the damping knob.
                           config.serve_lease = Duration::zero();
                         });
    auto peers = cluster.controller.start_instances(
        "w1",
        cluster.options_for(ConsistencyMode::kPrimaryBackupSync, nullptr));
    EXPECT_TRUE(peers.ok()) << peers.status().to_string();
    cluster.controller.start();

    ChaosHost host(cluster.network, cluster.controller);
    sim::FaultInjector injector(cluster.sim, host);
    sim::FaultPlan plan;
    // Every controller-touching message dropped for ~1.6s: long enough that
    // one heartbeat round must start inside it, short enough that a peer
    // whose ping failed cannot be pinged again before it closes.
    plan.message_chaos("wiera-controller", TimePoint::origin() + sec(3) +
                                               msec(600),
                       TimePoint::origin() + sec(5) + msec(200),
                       /*drop_prob=*/1.0, /*dup_prob=*/0.0);
    injector.arm(std::move(plan));
    cluster.sim.run_until(TimePoint(sec(15).us()));
    return std::make_pair(cluster.controller.recoveries_completed(),
                          cluster.controller.primary_changes());
  };

  const auto damped = run(/*threshold=*/2);
  EXPECT_EQ(damped.first, 0)
      << "a single dropped ping round tripped the failure detector despite "
         "flap damping";
  EXPECT_EQ(damped.second, 0);

  // Control: the seed behaviour on the same schedule does transition peers
  // down — proving the damping knob, not the schedule, absorbed the flap.
  const auto seed_behaviour = run(/*threshold=*/1);
  EXPECT_GE(seed_behaviour.first, 1)
      << "the drop window never failed a ping; the damped run above proved "
         "nothing";
}

// ------------------------------------------------------------------ replay
//
// `chaos_test --seed N --plan MODE:FAULT` re-runs exactly one schedule —
// the reproducer line scripts/chaos_sweep.sh prints for every CHAOS-FAIL.
// FAULT is one of
// partition|crash|drop|spike|brownout|midflush|bitrot|torn|msgcorrupt|
// stutter|flakylink|slownode
// (brownout and midflush ignore MODE; brownout always runs the
// primary-backup overload schedule, midflush the async-primary batched
// flush failover). The corruption classes replay with scrub + read-repair
// armed, exactly as the CorruptionSuite runs them; the gray classes replay
// with health detection armed, exactly as the GrayFailureSuite runs them.
// `chaos_test --list-plans` prints every FAULT token one per line
// (scripts/sweep_lib.sh validates its sweep matrices against it). Add
// --dump-telemetry (or set WIERA_DUMP_TELEMETRY=1) to print the metrics
// snapshot and span trees of the replayed schedule (docs/OBSERVABILITY.md).

// Every FAULT token --plan accepts, in the order the enum declares them.
const char* const kPlanNames[] = {"partition", "crash",   "drop",
                                  "spike",     "bitrot",  "torn",
                                  "msgcorrupt", "stutter", "flakylink",
                                  "slownode",  "brownout", "midflush"};

int list_plans_main() {
  for (const char* name : kPlanNames) std::printf("%s\n", name);
  return 0;
}

int replay_main(uint64_t seed, const std::string& plan_spec) {
  const size_t colon = plan_spec.find(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--plan must be MODE:FAULT, got '%s'\n",
                 plan_spec.c_str());
    return 2;
  }
  const std::string mode_name = plan_spec.substr(0, colon);
  const std::string fault_name = plan_spec.substr(colon + 1);

  if (fault_name == "brownout") {
    BrownoutResult r = run_brownout(seed);
    print_brownout_stats(seed, r);
    if (!r.violations.empty()) {
      std::printf("%s\n",
                  sim::ConsistencyOracle::describe(r.violations).c_str());
      return 1;
    }
    std::printf("replay clean\n");
    return 0;
  }

  if (fault_name == "midflush") {
    MidFlushResult r = run_midflush(seed);
    std::printf(
        "replay seed=%llu plan=midflush trace=%s puts_ok=%lld batches=%lld\n",
        static_cast<unsigned long long>(seed), hex_trace(r.trace_hash).c_str(),
        static_cast<long long>(r.puts_ok),
        static_cast<long long>(r.batches));
    if (!r.convergence_violations.empty()) {
      std::printf("%s\n",
                  sim::ConsistencyOracle::describe(r.convergence_violations)
                      .c_str());
      return 1;
    }
    std::printf("replay clean\n");
    return 0;
  }

  auto mode = consistency_mode_from_name(mode_name);
  if (!mode.ok()) {
    std::fprintf(stderr, "%s\n", mode.status().to_string().c_str());
    return 2;
  }
  FaultClass fault;
  if (fault_name == "partition") {
    fault = FaultClass::kPartition;
  } else if (fault_name == "crash") {
    fault = FaultClass::kCrash;
  } else if (fault_name == "drop") {
    fault = FaultClass::kDropWindow;
  } else if (fault_name == "spike") {
    fault = FaultClass::kLatencySpike;
  } else if (fault_name == "bitrot") {
    fault = FaultClass::kBitRot;
  } else if (fault_name == "torn") {
    fault = FaultClass::kTornWrite;
  } else if (fault_name == "msgcorrupt") {
    fault = FaultClass::kMsgCorrupt;
  } else if (fault_name == "stutter") {
    fault = FaultClass::kStutter;
  } else if (fault_name == "flakylink") {
    fault = FaultClass::kFlakyLink;
  } else if (fault_name == "slownode") {
    fault = FaultClass::kSlowNode;
  } else {
    std::fprintf(stderr, "unknown fault class '%s'\n", fault_name.c_str());
    return 2;
  }

  const bool integrity = is_integrity_fault(fault);
  const bool gray = is_gray_fault(fault);
  RunResult r = run_chaos(
      *mode, fault, seed,
      integrity ? self_heal_tweak()
                : std::function<void(WieraPeer::Config&)>{},
      /*telemetry_on=*/true,
      gray ? health_tweak()
           : std::function<void(WieraController::Config&)>{});
  std::printf("replay seed=%llu mode=%s fault=%s trace=%s ops=%lld ok=%lld\n",
              static_cast<unsigned long long>(seed),
              std::string(consistency_mode_name(*mode)).c_str(),
              fault_name.c_str(), hex_trace(r.trace_hash).c_str(),
              static_cast<long long>(r.ops),
              static_cast<long long>(r.completed_ok));
  if (integrity) print_corruption_stats(*mode, fault, seed, r);
  if (gray) print_health_stats(*mode, fault, seed, r);
  if (!r.violations.empty()) {
    std::printf("%s\n", sim::ConsistencyOracle::describe(r.violations).c_str());
    return 1;
  }
  if (integrity && !r.convergence_violations.empty()) {
    std::printf("%s\n",
                sim::ConsistencyOracle::describe(r.convergence_violations)
                    .c_str());
    return 1;
  }
  std::printf("replay clean\n");
  return 0;
}

}  // namespace
}  // namespace wiera::geo

// Custom main (gtest_main is deliberately not linked, see tests/CMakeLists):
// with --plan the binary replays a single schedule and exits; otherwise it
// runs the whole suite.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  uint64_t seed = 1;
  std::string plan;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--plan" && i + 1 < argc) {
      plan = argv[++i];
    } else if (arg == "--list-plans") {
      return wiera::geo::list_plans_main();
    } else if (arg == "--dump-telemetry") {
      // Same switch the env var flips; the flag form keeps reproducer
      // command lines self-contained.
      setenv("WIERA_DUMP_TELEMETRY", "1", 1);
    } else if (arg == "--dump-timeseries") {
      setenv("WIERA_DUMP_TIMESERIES", "1", 1);
    }
  }
  if (!plan.empty()) return wiera::geo::replay_main(seed, plan);
  return RUN_ALL_TESTS();
}
