// Scenario: cutting the storage bill with cold-data tiering (§3.3.3 /
// §5.3 — "Many internet applications see huge fraction of data which is
// accessed infrequently or not at all").
//
// A Tiera instance runs the paper's ReducedCost policy (Fig. 6a): objects
// untouched for 120 hours move from EBS to S3-IA, throttled to 100 KB/s.
// We store a photo library, keep a few albums hot, fast-forward a week of
// simulated time, and print where everything ended up plus the monthly
// bill before/after (Table 4 prices).
#include <cstdio>

#include "common/units.h"
#include "cost/cost_model.h"
#include "policy/parser.h"
#include "tiera/instance.h"

using namespace wiera;

namespace {

constexpr int kAlbums = 20;
constexpr int kPhotosPerAlbum = 5;
constexpr int64_t kPhotoSize = 256 * KiB;

std::string photo_key(int album, int photo) {
  return "album" + std::to_string(album) + "/photo" + std::to_string(photo);
}

sim::Task<void> load_library(tiera::TieraInstance& instance) {
  for (int a = 0; a < kAlbums; ++a) {
    for (int p = 0; p < kPhotosPerAlbum; ++p) {
      auto put = co_await instance.put(
          photo_key(a, p), Blob::zeros(static_cast<size_t>(kPhotoSize)));
      if (!put.ok()) {
        std::fprintf(stderr, "put: %s\n", put.status().to_string().c_str());
      }
    }
  }
}

sim::Task<void> browse_hot_albums(tiera::TieraInstance& instance,
                                  sim::Simulation& sim) {
  // Albums 0 and 1 stay popular: someone views them every two days.
  while (sim.now() < TimePoint(hoursd(24 * 7).us())) {
    co_await sim.delay(hoursd(48));
    for (int a = 0; a < 2; ++a) {
      for (int p = 0; p < kPhotosPerAlbum; ++p) {
        auto got = co_await instance.get(photo_key(a, p));
        (void)got;
      }
    }
  }
}

}  // namespace

int main() {
  sim::Simulation sim;

  auto doc = policy::parse_policy(R"(
Tiera PhotoArchive() {
   tier1: {name: EBS, size: 100G};
   tier2: {name: S3-IA, size: 1T};
   %Data is getting cold (Fig. 6a)
   event(object.lastAccessedTime > 120 hours) : response {
      move(what:object.location == tier1,
           to:tier2, bandwidth:100KB/s);
   }
}
)");
  if (!doc.ok()) {
    std::fprintf(stderr, "parse: %s\n", doc.status().to_string().c_str());
    return 1;
  }
  tiera::TieraInstance::Config config;
  config.instance_id = "photo-service";
  config.region = "us-east";
  config.policy = std::move(doc).value();
  config.cold_scan_interval = hoursd(6);
  tiera::TieraInstance instance(sim, std::move(config));
  instance.start();

  sim.spawn(load_library(instance));
  sim.spawn(browse_hot_albums(instance, sim));
  sim.run_until(TimePoint(hoursd(24 * 7).us()));  // one simulated week

  // Where did everything land?
  auto* ebs = instance.tier_by_label("tier1");
  auto* s3ia = instance.tier_by_label("tier2");
  std::printf("after one week: %lld photos on EBS (hot), %lld on S3-IA "
              "(cold)\n",
              static_cast<long long>(ebs->object_count()),
              static_cast<long long>(s3ia->object_count()));
  std::printf("cold objects demoted by the policy engine: %lld\n",
              static_cast<long long>(instance.cold_moves()));

  // The bill, before vs after (Table 4 prices).
  const int64_t total_bytes = kAlbums * kPhotosPerAlbum * kPhotoSize;
  const double flat_bill = cost::CostModel::storage_cost_per_month(
      store::TierKind::kBlockSsd, total_bytes);
  const double tiered_bill =
      cost::CostModel::storage_cost_per_month(store::TierKind::kBlockSsd,
                                              ebs->used_bytes()) +
      cost::CostModel::storage_cost_per_month(store::TierKind::kObjectS3IA,
                                              s3ia->used_bytes());
  std::printf("monthly storage bill: $%.4f all-EBS -> $%.4f tiered "
              "(%.0f%% saved)\n",
              flat_bill, tiered_bill, 100.0 * (1.0 - tiered_bill / flat_bill));

  // Cold data is still there, just slower.
  bool done = false;
  auto read_cold = [&]() -> sim::Task<void> {
    const TimePoint start = sim.now();
    auto got = co_await instance.get(photo_key(kAlbums - 1, 0));
    std::printf("reading a cold photo still works: %s (%.1f ms from S3-IA)\n",
                got.ok() ? "yes" : "NO", (sim.now() - start).ms());
    done = true;
    sim.stop();
  };
  sim.spawn(read_cold());
  sim.run();
  return done ? 0 : 1;
}
