// Scenario: a social-network backend (the paper's motivating example for
// EventualConsistency — "e.g., for social network services like Facebook
// and Twitter").
//
// A Wiera instance spans four regions under eventual consistency: posts
// commit locally in under a millisecond and propagate in the background.
// We then demonstrate the run-time flexibility claim: the operator flips
// the SAME deployment to MultiPrimaries (say, for a payment feature) with
// one call, and put latency changes accordingly — no application changes.
#include <cstdio>
#include <memory>

#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "wiera/client.h"
#include "wiera/controller.h"

using namespace wiera;
namespace geo = wiera::geo;

namespace {

net::Topology make_topology() {
  net::Topology topo = net::Topology::paper_default();
  for (const char* region : {"us-west", "us-east", "eu-west", "asia-east"}) {
    topo.add_node(std::string("tiera-") + region, std::string("aws-") + region);
  }
  topo.add_node("wiera-controller", "aws-us-east");
  topo.add_node("phone-in-tokyo", "aws-asia-east");
  return topo;
}

sim::Task<void> demo(geo::WieraController& controller,
                     geo::WieraClient& client, sim::Simulation& sim) {
  // Post an update: commits at the Tokyo replica, fast.
  TimePoint start = sim.now();
  auto post = co_await client.put("timeline:alice", Blob("having ramen"));
  std::printf("[eventual]   post committed in %.2f ms (version %lld)\n",
              (sim.now() - start).ms(), static_cast<long long>(post->version));

  // Read-your-writes at the closest replica.
  auto read = co_await client.get("timeline:alice");
  std::printf("[eventual]   read \"%s\" from %s in %.2f ms\n",
              read->value.to_string().c_str(), read->served_by.c_str(),
              (sim.now() - start).ms());

  // Give background propagation a moment, then check a far replica.
  co_await sim.delay(sec(2));
  auto* eu = controller.peer("tiera-eu-west");
  std::printf("[eventual]   EU replica converged: %s\n",
              eu->local().meta().find("timeline:alice") != nullptr ? "yes"
                                                                   : "no");

  // Strong consistency for checkout: one management call, same deployment,
  // unmodified application.
  Status st = co_await controller.change_consistency(
      "social", geo::ConsistencyMode::kMultiPrimaries);
  std::printf("[switch]     change_consistency -> MultiPrimaries: %s\n",
              st.to_string().c_str());

  start = sim.now();
  auto payment = co_await client.put("order:alice:42", Blob("paid"));
  std::printf("[strong]     payment committed in %.2f ms "
              "(global lock + synchronous broadcast)\n",
              (sim.now() - start).ms());
  (void)payment;

  // Every replica has it before the put returned.
  for (const char* region : {"us-west", "us-east", "eu-west"}) {
    auto* peer = controller.peer(std::string("tiera-") + region);
    std::printf("[strong]     %s has the payment: %s\n", region,
                peer->local().meta().find("order:alice:42") != nullptr
                    ? "yes"
                    : "no");
  }
  sim.stop();
}

}  // namespace

int main() {
  sim::Simulation sim;
  net::Network network(sim, make_topology());
  rpc::Registry registry;
  geo::WieraController controller(
      sim, network, registry, {"wiera-controller", sec(1), 0});
  std::vector<std::unique_ptr<geo::TieraServer>> servers;
  for (const char* region : {"us-west", "us-east", "eu-west", "asia-east"}) {
    servers.push_back(std::make_unique<geo::TieraServer>(
        sim, network, registry, std::string("tiera-") + region));
    controller.register_server(servers.back().get());
  }

  geo::WieraController::StartOptions options;
  options.global = std::move(policy::parse_policy(
                                 policy::builtin::eventual_consistency()))
                       .value();
  options.local_params["t"] = policy::Value::duration_of(sec(30));
  options.queue_flush_interval = msec(200);
  auto peers = controller.start_instances("social", std::move(options));
  if (!peers.ok()) {
    std::fprintf(stderr, "start: %s\n", peers.status().to_string().c_str());
    return 1;
  }
  std::printf("launched %zu replicas: ", peers->size());
  for (const auto& id : *peers) std::printf("%s ", id.c_str());
  std::printf("\n");

  geo::WieraClient client(sim, network, registry, "alice-app",
                          "phone-in-tokyo", *peers);
  std::printf("closest replica to Tokyo: %s\n", client.closest_peer().c_str());

  sim.spawn(demo(controller, client, sim));
  sim.run();
  return 0;
}
