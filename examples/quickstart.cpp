// Quickstart: a single-datacenter Tiera instance from a policy written in
// the paper's DSL, exercising the PUT/GET + versioning API (Table 2).
//
//   build/examples/quickstart
//
// What it shows:
//   1. parse a Tiera policy (two tiers, write-back caching),
//   2. put/get objects through the multi-tier instance,
//   3. object versioning (get_version / get_version_list / removeVersion),
//   4. the policy engine at work: the timer event persists dirty data from
//      the memory tier to disk in the background.
#include <cstdio>

#include "policy/parser.h"
#include "tiera/instance.h"

using namespace wiera;

namespace {

sim::Task<void> demo(tiera::TieraInstance& instance, sim::Simulation& sim) {
  // 1. Store an object: the LowLatency policy puts it in memory, dirty.
  auto put = co_await instance.put("greeting", Blob("hello wiera"));
  std::printf("put greeting -> version %lld (%.2f ms)\n",
              static_cast<long long>(put->version), sim.now().seconds() * 1e3);

  // 2. Overwrites create new versions; old ones stay retrievable.
  co_await instance.put("greeting", Blob("hello again"));
  auto latest = co_await instance.get("greeting");
  auto v1 = co_await instance.get_version("greeting", 1);
  std::printf("latest (v%lld): \"%s\"   v1: \"%s\"\n",
              static_cast<long long>(latest->version),
              latest->value.to_string().c_str(),
              v1->value.to_string().c_str());

  auto versions = instance.get_version_list("greeting");
  std::printf("versions:");
  for (int64_t v : versions) std::printf(" %lld", static_cast<long long>(v));
  std::printf("\n");

  // 3. The object currently lives only in the memory tier (write-back).
  std::printf("on disk yet? %s\n",
              instance.tier_by_label("tier2")->contains(
                  tiera::TieraInstance::versioned_key("greeting", 2))
                  ? "yes"
                  : "no (still dirty in memory)");

  // 4. Wait past the write-back timer: the policy engine persists it.
  co_await sim.delay(sec(12));
  std::printf("after the 10s timer: on disk? %s\n",
              instance.tier_by_label("tier2")->contains(
                  tiera::TieraInstance::versioned_key("greeting", 2))
                  ? "yes"
                  : "no");

  // 5. Clean up one version.
  co_await instance.remove_version("greeting", 1);
  std::printf("after removeVersion(1): %zu version(s) left\n",
              instance.get_version_list("greeting").size());
  sim.stop();
}

}  // namespace

int main() {
  sim::Simulation sim;

  // The LowLatency instance of the paper's Fig. 1(a): Memcached in front,
  // EBS behind, write-back on a 10-second timer.
  auto doc = policy::parse_policy(R"(
Tiera LowLatencyInstance(time t) {
   tier1: {name: Memcached, size: 5G};
   tier2: {name: EBS, size: 5G};
   event(insert.into) : response {
      insert.object.dirty = true;
      store(what:insert.object, to:tier1);
   }
   event(time=t) : response {
      copy(what: object.location == tier1 && object.dirty == true,
           to:tier2);
   }
}
)");
  if (!doc.ok()) {
    std::fprintf(stderr, "parse: %s\n", doc.status().to_string().c_str());
    return 1;
  }

  tiera::TieraInstance::Config config;
  config.instance_id = "quickstart";
  config.region = "us-east";
  config.policy = std::move(doc).value();
  config.params["t"] = policy::Value::duration_of(sec(10));
  tiera::TieraInstance instance(sim, std::move(config));
  instance.start();

  sim.spawn(demo(instance, sim));
  sim.run();
  std::printf("done (simulated %.1f s)\n", sim.now().seconds());
  return 0;
}
