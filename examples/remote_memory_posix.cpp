// Scenario: an unmodified POSIX application on remote memory (§5.4).
//
// The paper's headline flexibility result: an application that only speaks
// POSIX (here, the page-based table store — the MySQL stand-in) runs on an
// Azure VM whose disk is throttled to 500 IOPS. Mounting Wiera through the
// FUSE-style VFS and forwarding reads to an AWS instance's memory tier
// 2 ms away speeds it up without touching the application.
#include <cstdio>
#include <memory>

#include "apps/table_store.h"
#include "policy/parser.h"
#include "sim/sync.h"
#include "vfs/vfs.h"

using namespace wiera;
namespace geo = wiera::geo;

namespace {

struct Deployment {
  sim::Simulation sim{99};
  net::Network network;
  rpc::Registry registry;
  std::unique_ptr<geo::WieraPeer> azure;
  std::unique_ptr<geo::WieraPeer> aws;
  std::unique_ptr<vfs::WieraVfs> fs;

  explicit Deployment(bool remote_memory)
      : network(sim, make_topology()) {
    geo::WieraPeer::Config azure_config;
    azure_config.instance_id = "azure-vm";
    azure_config.region = "us-east";
    azure_config.mode = remote_memory
                            ? geo::ConsistencyMode::kPrimaryBackupSync
                            : geo::ConsistencyMode::kEventual;
    azure_config.is_primary = true;
    azure_config.primary_instance = "azure-vm";
    azure_config.local.policy =
        std::move(policy::parse_policy(
                      "Tiera Disk() { tier1: {name: LocalDisk, size: 100G}; }"))
            .value();
    azure_config.local.tier_tweak = [](const std::string&,
                                       store::TierSpec& spec) {
      spec.iops_limit = store::calibration::kAzureDiskIops;
      spec.buffer_cache = false;
    };
    if (remote_memory) azure_config.get_forward_target = "aws-vm";
    azure = std::make_unique<geo::WieraPeer>(sim, network, registry,
                                             std::move(azure_config));
    if (remote_memory) {
      geo::WieraPeer::Config aws_config;
      aws_config.instance_id = "aws-vm";
      aws_config.region = "us-east";
      aws_config.mode = geo::ConsistencyMode::kPrimaryBackupSync;
      aws_config.primary_instance = "azure-vm";
      aws_config.local.policy =
          std::move(policy::parse_policy(
                        "Tiera Mem() { tier1: {name: LocalMemory, size: 4G}; }"))
              .value();
      aws = std::make_unique<geo::WieraPeer>(sim, network, registry,
                                             std::move(aws_config));
      azure->set_peers({"azure-vm", "aws-vm"});
      aws->set_peers({"azure-vm", "aws-vm"});
      aws->start();
    }
    azure->start();
    fs = std::make_unique<vfs::WieraVfs>(sim, *azure,
                                         vfs::WieraVfs::Options{16 * KiB});
  }

  static net::Topology make_topology() {
    net::Topology topo;
    topo.add_datacenter("azure-us-east", net::Provider::kAzure, "us-east");
    topo.add_datacenter("aws-us-east", net::Provider::kAws, "us-east");
    topo.set_rtt("azure-us-east", "aws-us-east", msec(2));
    topo.add_node("azure-vm", "azure-us-east", net::VmType::standard_d3());
    topo.add_node("aws-vm", "aws-us-east", net::VmType::t2_micro());
    return topo;
  }
};

// A "report query" fanned out over 16 application threads, scanning 3200
// random rows of a 40k-row table with a deliberately small (1 MB) buffer
// pool, so nearly every select touches the storage backend. The
// application code is identical for both deployments — only the mount
// differs.
double run_report(Deployment& deployment) {
  apps::TableStore db(deployment.sim, *deployment.fs,
                      apps::TableStore::Options{16 * KiB, 1 * MiB, true});
  constexpr int kRows = 40000;
  constexpr int kThreads = 16;
  constexpr int kSelectsPerThread = 200;

  double elapsed_ms = 0;
  bool done = false;
  auto body = [&]() -> sim::Task<void> {
    Status st = db.create_table("events", 512);
    if (!st.ok()) std::abort();
    for (int i = 0; i < kRows; ++i) {
      auto id = co_await db.insert("events", Blob::zeros(512));
      if (!id.ok()) std::abort();
    }
    const TimePoint start = deployment.sim.now();
    auto worker = [](apps::TableStore* store, uint64_t seed, int selects,
                     int rows) -> sim::Task<void> {
      Rng rng(seed);
      for (int i = 0; i < selects; ++i) {
        auto row = co_await store->select(
            "events", rng.uniform_int(0, rows - 1));
        if (!row.ok()) std::abort();
      }
    };
    std::vector<sim::Task<void>> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.push_back(worker(&db, 100 + static_cast<uint64_t>(t),
                               kSelectsPerThread, kRows));
    }
    co_await sim::when_all(deployment.sim, std::move(workers));
    elapsed_ms = (deployment.sim.now() - start).ms();
    done = true;
    deployment.sim.stop();
  };
  deployment.sim.spawn(body());
  deployment.sim.run();
  return done ? elapsed_ms : -1;
}

}  // namespace

int main() {
  Deployment local(/*remote_memory=*/false);
  const double local_ms = run_report(local);
  std::printf("report over local throttled disk:        %8.1f ms\n",
              local_ms);

  Deployment remote(/*remote_memory=*/true);
  const double remote_ms = run_report(remote);
  std::printf("report over remote memory through Wiera: %8.1f ms\n",
              remote_ms);
  std::printf("speedup from the remote fast tier: %.2fx — with zero "
              "application changes (all I/O went through the POSIX VFS)\n",
              local_ms / remote_ms);
  return 0;
}
