// Figure 10 — "Operation latency for S3 in US East from each region"
// (§5.3): all instances share a single centralized S3-IA tier in US East
// for cold data. Gets from remote regions pay the WAN RTT plus the S3-IA
// request latency (~200 ms from Asia East in the paper); puts stay local
// and fast because hot writes land in each region's fast tiers.
//
// The bench drives the actual Wiera mechanism: ColdDataMonitoring demotes
// idle objects; non-central peers ship them to the US East peer's S3-IA
// tier and drop local replicas; later reads fetch from the central tier.
#include "harness.h"

using namespace wiera::bench;
namespace geo = wiera::geo;
using namespace wiera;

int main() {
  PaperCluster cluster(/*seed=*/11);

  auto options = cluster.options_for(R"(
Wiera CentralizedColdPolicy() {
   Region1 = {name:ColdInstance, region:US-West,
      tier1 = {name:LocalDisk, size=100G},
      tier2 = {name:S3-IA, size=1T} }
   Region2 = {name:ColdInstance, region:US-East,
      tier1 = {name:LocalDisk, size=100G},
      tier2 = {name:S3-IA, size=1T} }
   Region3 = {name:ColdInstance, region:EU-West,
      tier1 = {name:LocalDisk, size=100G},
      tier2 = {name:S3-IA, size=1T} }
   Region4 = {name:ColdInstance, region:Asia-East,
      tier1 = {name:LocalDisk, size=100G},
      tier2 = {name:S3-IA, size=1T} }

   event(insert.into) : response {
      store(what:insert.object, to:local_instance)
      queue(what:insert.object, to:all_regions)
   }
}
)");
  options.resolve_local = [](const std::string& name)
      -> Result<policy::PolicyDoc> {
    if (name != "ColdInstance") return not_found(name);
    return policy::parse_policy(R"(
Tiera ColdInstance() {
   tier1: {name: LocalDisk, size: 100G};
   tier2: {name: S3-IA, size: 1T};
   event(object.lastAccessedTime > 120 hours) : response {
      move(what:object.location == tier1, to:tier2);
   }
}
)");
  };
  options.customize = [](geo::WieraPeer::Config& config) {
    config.cold_tier_label = "tier2";
    if (config.instance_id != "tiera-us-east") {
      config.centralized_cold_target = "tiera-us-east";  // central region
    }
  };
  auto peers = cluster.controller.start_instances("fig10",
                                                  std::move(options));
  if (!peers.ok()) {
    std::fprintf(stderr, "start: %s\n", peers.status().to_string().c_str());
    return 1;
  }

  // Write a batch of objects from every region, then let them go cold.
  constexpr int kObjectsPerRegion = 16;
  std::vector<std::unique_ptr<geo::WieraClient>> clients;
  for (const std::string& region : paper_regions()) {
    clients.push_back(std::make_unique<geo::WieraClient>(
        cluster.sim, cluster.network, cluster.registry, "app-" + region,
        "client-" + region, *peers));
  }

  bool loaded = false;
  auto load = [&]() -> sim::Task<void> {
    for (size_t r = 0; r < clients.size(); ++r) {
      for (int i = 0; i < kObjectsPerRegion; ++i) {
        const std::string key =
            "cold-" + paper_regions()[r] + "-" + std::to_string(i);
        auto put = co_await clients[r]->put(key, Blob::zeros(4096));
        if (!put.ok()) {
          std::fprintf(stderr, "load: %s\n",
                       put.status().to_string().c_str());
        }
      }
    }
    loaded = true;
  };
  cluster.sim.spawn(load());
  cluster.sim.run_until(TimePoint(sec(60).us()));
  if (!loaded) return 1;

  // 130 hours idle: every object crosses the 120 h threshold; non-central
  // regions ship replicas to US East and drop local copies.
  cluster.sim.run_until(TimePoint(hoursd(130).us()));

  int64_t central_cold = 0;
  if (auto* east = cluster.controller.peer("tiera-us-east")) {
    central_cold = east->local().tier_by_label("tier2")->object_count();
  }
  std::printf("objects in the centralized US-East S3-IA tier: %lld "
              "(expected >= %d)\n",
              static_cast<long long>(central_cold), 3 * kObjectsPerRegion);

  // Measure cold-get latency from each region, plus hot-put latency (puts
  // keep landing on the local fast tier).
  print_header("Figure 10: operation latency to centralized S3-IA (US East) "
               "from each region");
  print_row({"region", "get_ms", "put_ms", "paper_get"});
  const std::map<std::string, std::string> paper_get = {
      {"us-east", "~30"}, {"us-west", "~100"}, {"eu-west", "~110"},
      {"asia-east", "~200"}};

  for (size_t r = 0; r < clients.size(); ++r) {
    const std::string& region = paper_regions()[r];
    LatencyHistogram get_hist, put_hist;
    bool done = false;
    auto measure = [&, r]() -> sim::Task<void> {
      for (int i = 0; i < kObjectsPerRegion; ++i) {
        const std::string key =
            "cold-" + region + "-" + std::to_string(i);
        TimePoint start = cluster.sim.now();
        auto got = co_await clients[r]->get(key);
        if (got.ok()) get_hist.record(cluster.sim.now() - start);
        // Hot put of fresh data stays local.
        start = cluster.sim.now();
        auto put = co_await clients[r]->put("hot-" + key, Blob::zeros(4096));
        if (put.ok()) put_hist.record(cluster.sim.now() - start);
      }
      done = true;
    };
    cluster.sim.spawn(measure());
    cluster.sim.run_until(cluster.sim.now() + sec(120));
    if (!done) return 1;
    print_row({region, fmt_ms(get_hist.mean()), fmt_ms(put_hist.mean()),
               paper_get.at(region)});
  }

  print_metrics(cluster.sim, "fig10 centralized cold storage",
                {"tiera_", "wiera_client_"});
  std::printf("\n(the paper's headline: worst-case cold get ~200 ms from "
              "Asia East; put stays fast everywhere because writes are "
              "local)\n");
  return 0;
}
