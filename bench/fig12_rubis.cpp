// Figure 12 — "Throughput (request/s) comparison" (§5.4.2).
//
// The unmodified RUBiS auction application (Apache/PHP/MySQL in the paper;
// here the page-based table store over the POSIX VFS) runs on an Azure VM.
// MySQL's storage is either
//   local  — the VM's attached disk (O_DIRECT, 16 MB InnoDB buffer, Azure's
//            500 IOPS throttle), or
//   wiera  — remote memory on an AWS instance 2 ms away through Wiera
//            (primary-backup, gets forwarded to the AWS memory tier).
// Database: 50,000 items and 50,000 customers; 300 simulated clients;
// 300 s run with 120 s ramp-up and 60 s ramp-down (paper parameters).
// Paper result: small VMs see low throughput either way; Standard D2/D3
// gain 50-80% from remote memory thanks to weaker network throttling.
#include "harness.h"
#include "apps/rubis.h"

using namespace wiera::bench;
namespace geo = wiera::geo;
using namespace wiera;

namespace {

struct Setup {
  sim::Simulation sim{23};
  net::Network network;
  rpc::Registry registry;
  std::unique_ptr<geo::WieraPeer> azure_peer;
  std::unique_ptr<geo::WieraPeer> aws_peer;
  std::unique_ptr<vfs::WieraVfs> fs;
  std::unique_ptr<apps::TableStore> db;

  Setup(const net::VmType& azure_vm, bool remote_memory)
      : network(sim, make_topology(azure_vm)) {
    geo::WieraPeer::Config azure;
    azure.instance_id = "azure-vm";
    azure.region = "us-east";
    azure.mode = remote_memory ? geo::ConsistencyMode::kPrimaryBackupSync
                               : geo::ConsistencyMode::kEventual;
    azure.is_primary = true;
    azure.primary_instance = "azure-vm";
    azure.local.policy = std::move(policy::parse_policy(R"(
Tiera AzureDiskInstance() {
   tier1: {name: LocalDisk, size: 100G};
}
)")).value();
    azure.local.tier_tweak = [](const std::string&, store::TierSpec& spec) {
      spec.iops_limit = store::calibration::kAzureDiskIops;
      spec.buffer_cache = false;  // host cache off + O_DIRECT (paper)
    };
    if (remote_memory) azure.get_forward_target = "aws-vm";
    azure_peer = std::make_unique<geo::WieraPeer>(sim, network, registry,
                                                  std::move(azure));
    if (remote_memory) {
      geo::WieraPeer::Config aws;
      aws.instance_id = "aws-vm";
      aws.region = "us-east";
      aws.mode = geo::ConsistencyMode::kPrimaryBackupSync;
      aws.primary_instance = "azure-vm";
      aws.local.policy = std::move(policy::parse_policy(R"(
Tiera AwsMemoryInstance() {
   tier1: {name: LocalMemory, size: 4G};
}
)")).value();
      aws_peer = std::make_unique<geo::WieraPeer>(sim, network, registry,
                                                  std::move(aws));
      azure_peer->set_peers({"azure-vm", "aws-vm"});
      aws_peer->set_peers({"azure-vm", "aws-vm"});
      aws_peer->start();
    }
    azure_peer->start();
    fs = std::make_unique<vfs::WieraVfs>(
        sim, *azure_peer, vfs::WieraVfs::Options{16 * KiB});
    apps::TableStore::Options db_options;
    db_options.page_size = 16 * KiB;
    db_options.buffer_pool_bytes = 16 * MiB;  // paper: minimum InnoDB buffer
    db_options.direct = true;                 // O_DIRECT
    db = std::make_unique<apps::TableStore>(sim, *fs, db_options);
  }

  static net::Topology make_topology(const net::VmType& azure_vm) {
    net::Topology topo;
    topo.add_datacenter("azure-us-east", net::Provider::kAzure, "us-east");
    topo.add_datacenter("aws-us-east", net::Provider::kAws, "us-east");
    topo.set_rtt("azure-us-east", "aws-us-east",
                 usec(net::calibration::kAwsAzureUsEastRttUs));
    topo.set_jitter_fraction(0.02);
    topo.add_node("azure-vm", "azure-us-east", azure_vm);
    topo.add_node("aws-vm", "aws-us-east", net::VmType::t2_micro());
    return topo;
  }
};

double run_rubis(const net::VmType& vm, bool remote_memory) {
  Setup setup(vm, remote_memory);
  apps::RubisOptions options;
  options.items = 50000;
  options.users = 50000;
  options.clients = 300;
  options.ramp_up = sec(120);
  options.measure = sec(120);
  options.ramp_down = sec(60);
  options.think_time = msec(350);
  options.seed = 31;
  apps::RubisApp app(setup.sim, *setup.db, options);

  double rps = 0;
  bool done = false;
  auto body = [&]() -> sim::Task<void> {
    Status st = co_await app.populate();
    if (!st.ok()) {
      std::fprintf(stderr, "populate: %s\n", st.to_string().c_str());
      std::abort();
    }
    auto result = co_await app.run();
    if (!result.ok()) {
      std::fprintf(stderr, "run: %s\n",
                   result.status().to_string().c_str());
      std::abort();
    }
    rps = result->throughput_rps();
    done = true;
    setup.sim.stop();
  };
  setup.sim.spawn(body());
  setup.sim.run();
  if (!done) std::abort();
  print_metrics(setup.sim,
                vm.name + (remote_memory ? " (remote)" : " (local)"),
                {"tiera_", "wiera_put", "wiera_get"});
  return rps;
}

}  // namespace

int main() {
  const net::VmType vms[] = {
      net::VmType::basic_a2(), net::VmType::standard_d1(),
      net::VmType::standard_d2(), net::VmType::standard_d3()};

  print_header("Figure 12: RUBiS throughput (requests/s) — local disk vs "
               "remote memory through Wiera");
  print_row({"vm", "local_disk", "wiera_remote", "ratio", "paper"});
  for (const net::VmType& vm : vms) {
    const double local = run_rubis(vm, /*remote_memory=*/false);
    const double remote = run_rubis(vm, /*remote_memory=*/true);
    std::string paper_note = "low both ways";
    if (vm.name == "Standard D2" || vm.name == "Standard D3") {
      paper_note = "+50-80% remote";
    }
    print_row({vm.name, str_format("%.0f", local), str_format("%.0f", remote),
               str_format("%.2fx", remote / local), paper_note});
  }
  return 0;
}
