// Figure 11 — "Performance (IOPS) comparison" (§5.4.1).
//
// Compares SysBench random I/O on an Azure VM between two storage setups:
//   local  — the VM's attached disk, O_DIRECT, host cache off. Azure
//            throttles attached disks to 500 IOPS, so every VM size pins
//            at ~500.
//   wiera  — remote memory through Wiera: the Azure instance is the
//            primary (disk tier only, synchronous `copy` updates); an AWS
//            t2.micro instance 2 ms away holds a memory tier; all gets are
//            forwarded to the AWS instance. Throughput scales with the
//            Azure VM's network throttle: small VMs (Basic A2 / Standard
//            D1) underperform the local disk, large ones (Standard D2/D3)
//            beat it by ~44% (the paper's headline).
#include "harness.h"
#include "apps/sysbench.h"

using namespace wiera::bench;
namespace geo = wiera::geo;
using namespace wiera;

namespace {

struct Setup {
  sim::Simulation sim{17};
  net::Network network;
  rpc::Registry registry;
  std::unique_ptr<geo::WieraPeer> azure_peer;
  std::unique_ptr<geo::WieraPeer> aws_peer;
  std::unique_ptr<vfs::WieraVfs> fs;

  Setup(const net::VmType& azure_vm, bool remote_memory)
      : network(sim, make_topology(azure_vm)) {
    // Azure primary: local disk tier, Azure's 500 IOPS throttle, no host
    // cache (turned off in the paper to dodge double caching).
    geo::WieraPeer::Config azure;
    azure.instance_id = "azure-vm";
    azure.region = "us-east";
    azure.mode = remote_memory ? geo::ConsistencyMode::kPrimaryBackupSync
                               : geo::ConsistencyMode::kEventual;
    azure.is_primary = true;
    azure.primary_instance = "azure-vm";
    azure.local.policy = std::move(policy::parse_policy(R"(
Tiera AzureDiskInstance() {
   tier1: {name: LocalDisk, size: 100G};
}
)")).value();
    azure.local.tier_tweak = [](const std::string&, store::TierSpec& spec) {
      spec.iops_limit = store::calibration::kAzureDiskIops;
      spec.buffer_cache = false;  // host cache off
    };
    if (remote_memory) {
      azure.get_forward_target = "aws-vm";  // §5.4: gets served from AWS
    }
    azure_peer = std::make_unique<geo::WieraPeer>(sim, network, registry,
                                                  std::move(azure));

    if (remote_memory) {
      geo::WieraPeer::Config aws;
      aws.instance_id = "aws-vm";
      aws.region = "us-east";
      aws.mode = geo::ConsistencyMode::kPrimaryBackupSync;
      aws.primary_instance = "azure-vm";
      aws.local.policy = std::move(policy::parse_policy(R"(
Tiera AwsMemoryInstance() {
   tier1: {name: LocalMemory, size: 1G};
}
)")).value();
      aws_peer = std::make_unique<geo::WieraPeer>(sim, network, registry,
                                                  std::move(aws));
      azure_peer->set_peers({"azure-vm", "aws-vm"});
      aws_peer->set_peers({"azure-vm", "aws-vm"});
      aws_peer->start();
    }
    azure_peer->start();
    fs = std::make_unique<vfs::WieraVfs>(
        sim, *azure_peer, vfs::WieraVfs::Options{16 * KiB});
  }

  static net::Topology make_topology(const net::VmType& azure_vm) {
    net::Topology topo;
    topo.add_datacenter("azure-us-east", net::Provider::kAzure, "us-east");
    topo.add_datacenter("aws-us-east", net::Provider::kAws, "us-east");
    // 2 ms between the Azure and AWS US East DCs (§5.4.1).
    topo.set_rtt("azure-us-east", "aws-us-east",
                 usec(net::calibration::kAwsAzureUsEastRttUs));
    topo.set_jitter_fraction(0.02);
    topo.add_node("azure-vm", "azure-us-east", azure_vm);
    topo.add_node("aws-vm", "aws-us-east", net::VmType::t2_micro());
    return topo;
  }
};

double run_sysbench(const net::VmType& vm, bool remote_memory) {
  Setup setup(vm, remote_memory);
  apps::SysbenchOptions options;
  options.file_size = 8 * MiB;
  options.block_size = 16 * KiB;
  options.operations = 4000;
  options.threads = 16;
  options.read_fraction = 0.6;  // sysbench rndrw is read-leaning (1.5:1)
  options.direct = true;
  options.seed = 29;
  apps::SysbenchFileIo bench(setup.sim, *setup.fs, options);

  double iops = 0;
  bool done = false;
  auto body = [&]() -> sim::Task<void> {
    Status st = co_await bench.prepare();
    if (!st.ok()) {
      std::fprintf(stderr, "prepare: %s\n", st.to_string().c_str());
      std::abort();
    }
    auto result = co_await bench.run();
    if (!result.ok()) {
      std::fprintf(stderr, "run: %s\n",
                   result.status().to_string().c_str());
      std::abort();
    }
    iops = result->iops();
    done = true;
    setup.sim.stop();
  };
  setup.sim.spawn(body());
  setup.sim.run();
  if (!done) std::abort();
  print_metrics(setup.sim,
                vm.name + (remote_memory ? " (remote)" : " (local)"),
                {"tiera_", "wiera_put", "wiera_get"});
  return iops;
}

}  // namespace

int main() {
  const net::VmType vms[] = {
      net::VmType::basic_a2(), net::VmType::standard_d1(),
      net::VmType::standard_d2(), net::VmType::standard_d3()};

  print_header("Figure 11: SysBench IOPS — Azure local disk vs remote AWS "
               "memory through Wiera");
  print_row({"vm", "local_disk", "wiera_remote", "ratio", "paper"});
  for (const net::VmType& vm : vms) {
    const double local = run_sysbench(vm, /*remote_memory=*/false);
    const double remote = run_sysbench(vm, /*remote_memory=*/true);
    std::string paper_note = "local ~500 flat";
    if (vm.name == "Standard D2" || vm.name == "Standard D3") {
      paper_note = "+44% remote";
    } else if (vm.name == "Basic A2") {
      paper_note = "remote < local";
    }
    print_row({vm.name, str_format("%.0f", local), str_format("%.0f", remote),
               str_format("%.2fx", remote / local), paper_note});
  }
  return 0;
}
