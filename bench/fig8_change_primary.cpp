// Figure 8 + Table 3 — "Changing primary instance" (§5.2).
//
// Setup (paper): instances in US West, EU West and Asia East under
// primary-backup consistency with asynchronous (queued) update propagation,
// as Tuba does. 10 clients per region; each region's active-client count
// follows a normal curve (mean 7.5 min, variance 5 min) peaking in the
// order Asia East -> EU West -> US West. Clients run a read-mostly workload
// (95% get / 5% put). The primary starts in Asia East.
//
// Two runs: Static (primary never moves) and Changing (the Fig. 5b
// ChangePrimary policy migrates the primary toward the most active region;
// 30 s put history, 15 s period threshold).
//
// Output:
//   Figure 8  — % of gets that saw the latest data (Strong) vs outdated
//               (Eventual), static vs changing. Paper: 69% outdated static,
//               39% outdated changing.
//   Table 3   — average put latency per region and overall.
//               Paper (static): EU 216.61, USW 105.26, Asia <5, overall 105.18
//               Paper (changing): EU 95.19, USW 72.20, Asia 40.60, overall 68.13
#include <cmath>
#include <cstring>
#include <map>

#include "harness.h"
#include "ycsb/ycsb.h"

using namespace wiera::bench;
namespace geo = wiera::geo;
namespace ycsb = wiera::ycsb;
using namespace wiera;

namespace {

constexpr int kClientsPerRegion = 10;
const std::vector<std::string> kRegions = {"us-west", "eu-west", "asia-east"};

struct RunResult {
  int64_t fresh_reads = 0;
  int64_t stale_reads = 0;
  std::map<std::string, LatencyHistogram> put_latency_by_region;
  int64_t primary_changes = 0;

  double stale_fraction() const {
    const int64_t total = fresh_reads + stale_reads;
    return total == 0 ? 0 : static_cast<double>(stale_reads) / total;
  }
};

// Gaussian activity level for a region at time t, with a floor so
// off-peak regions still generate background traffic (users exist
// everywhere; the bell curve models the *busy* population).
double activity(double t_minutes, double peak_minutes) {
  const double sigma = std::sqrt(5.0);  // variance 5 min
  const double d = (t_minutes - peak_minutes) / sigma;
  return 0.45 + 0.55 * std::exp(-0.5 * d * d);
}

RunResult run_experiment(bool changing_primary, uint64_t seed) {
  PaperCluster cluster(seed);

  auto options = cluster.options_for(R"(
Wiera Fig8PrimaryBackup() {
   Region1 = {name:LowLatencyInstance, region:US-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region2 = {name:LowLatencyInstance, region:EU-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region3 = {name:LowLatencyInstance, region:Asia-East, primary:True,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }

   % async propagation via queue response (as Tuba does)
   event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
         queue(what:insert.object, to:all_regions)
      else
         forward(what:insert.object, to:primary_instance)
   }
}
)");
  options.queue_flush_interval = sec(30);
  options.customize = [](geo::WieraPeer::Config& config) {
    // Evaluate the migration condition on the paper's cadence rather than
    // every few seconds (avoids primary ping-pong between regions).
    config.requests_monitor_check = sec(30);
    config.requests_monitor_window = sec(30);
  };
  if (changing_primary) {
    auto cp = policy::parse_policy(policy::builtin::change_primary());
    options.change_primary = std::move(cp).value();
  }
  auto peers = cluster.controller.start_instances("fig8", std::move(options));
  if (!peers.ok()) {
    std::fprintf(stderr, "start: %s\n", peers.status().to_string().c_str());
    std::abort();
  }

  RunResult result;
  // Staleness oracle: every put embeds a globally increasing sequence
  // number in the value; a read is fresh iff the sequence it returns is at
  // least the newest committed sequence for that key when the read started.
  // (Comparing version numbers would be confounded by the version-number
  // collisions that primary migration plus LWW can produce.)
  int64_t global_seq = 0;
  std::map<std::string, int64_t> latest_committed;

  auto encode_seq = [](int64_t seq) {
    Bytes data(1024, 0);
    std::memcpy(data.data(), &seq, sizeof(seq));
    return Blob(std::move(data));
  };
  auto decode_seq = [](const Blob& value) {
    int64_t seq = 0;
    if (value.size() >= sizeof(seq)) {
      std::memcpy(&seq, value.data(), sizeof(seq));
    }
    return seq;
  };

  // Region activity peaks in order Asia -> EU -> US over a 45 min run.
  const std::map<std::string, double> peaks = {
      {"asia-east", 7.5}, {"eu-west", 22.5}, {"us-west", 37.5}};
  const Duration kRunTime = minutes(45);

  bool stop = false;
  std::vector<std::unique_ptr<geo::WieraClient>> clients;

  auto client_loop = [&](geo::WieraClient* client, std::string region,
                         uint64_t client_seed) -> sim::Task<void> {
    Rng rng(client_seed);
    ycsb::WorkloadGenerator generator(
        [] {
          auto spec = ycsb::WorkloadSpec::read_mostly();  // 95/5 get/put
          spec.record_count = 4;
          spec.value_size = 1024;
          return spec;
        }(),
        client_seed);
    while (!stop) {
      // Activity gating: a client is active with probability equal to its
      // region's current activity level.
      const double level =
          activity(cluster.sim.now().seconds() / 60.0, peaks.at(region));
      if (!rng.bernoulli(level)) {
        co_await cluster.sim.delay(sec(5));
        continue;
      }
      auto op = generator.next();
      if (op.type == ycsb::OpType::kRead) {
        auto it = latest_committed.find(op.key);
        const int64_t latest = it == latest_committed.end() ? 0 : it->second;
        auto got = co_await client->get(op.key);
        if (got.ok()) {
          if (decode_seq(got->value) >= latest) {
            result.fresh_reads++;
          } else {
            result.stale_reads++;
          }
        }
      } else {
        const int64_t seq = ++global_seq;
        const TimePoint start = cluster.sim.now();
        Blob value = encode_seq(seq);
        auto put = co_await client->put(op.key, std::move(value));
        if (put.ok()) {
          result.put_latency_by_region[region].record(cluster.sim.now() -
                                                      start);
          auto& latest = latest_committed[op.key];
          latest = std::max(latest, seq);
        }
      }
      co_await cluster.sim.delay(msec(400));
    }
  };

  for (const std::string& region : kRegions) {
    for (int c = 0; c < kClientsPerRegion; ++c) {
      clients.push_back(std::make_unique<geo::WieraClient>(
          cluster.sim, cluster.network, cluster.registry,
          region + "-app-" + std::to_string(c), "client-" + region, *peers));
      cluster.sim.spawn(client_loop(clients.back().get(), region,
                                    seed * 1000 + clients.size()));
    }
  }

  cluster.sim.run_until(TimePoint(kRunTime.us()));
  stop = true;
  result.primary_changes = cluster.controller.primary_changes();
  print_metrics(cluster.sim,
                changing_primary ? "fig8 changing primary"
                                 : "fig8 static primary",
                {"wiera_client_put_latency_us", "wiera_forwarded_",
                 "wiera_replications_"});
  return result;
}

}  // namespace

int main() {
  RunResult r_static = run_experiment(/*changing_primary=*/false, 7);
  RunResult r_changing = run_experiment(/*changing_primary=*/true, 7);

  print_header("Figure 8: % of gets returning latest (Strong) vs outdated "
               "(Eventual) data");
  print_row({"config", "strong", "eventual", "paper_eventual"});
  print_row({"Static", fmt_pct(1 - r_static.stale_fraction()),
             fmt_pct(r_static.stale_fraction()), "69%"});
  print_row({"Changing", fmt_pct(1 - r_changing.stale_fraction()),
             fmt_pct(r_changing.stale_fraction()), "39%"});
  std::printf("primary migrations during changing run: %lld\n",
              static_cast<long long>(r_changing.primary_changes));

  print_header("Table 3: average put operation latency (ms)");
  print_row({"config", "EU-West", "US-West", "Asia-East", "Overall"});
  auto row = [](const char* label, RunResult& r) {
    LatencyHistogram overall;
    for (auto& [_, hist] : r.put_latency_by_region) overall.merge(hist);
    print_row({label, fmt_ms(r.put_latency_by_region["eu-west"].mean()),
               fmt_ms(r.put_latency_by_region["us-west"].mean()),
               fmt_ms(r.put_latency_by_region["asia-east"].mean()),
               fmt_ms(overall.mean())});
  };
  row("Static", r_static);
  row("Changing", r_changing);
  print_row({"paper-static", "216.61", "105.26", "<5", "105.18"});
  print_row({"paper-changing", "95.19", "72.20", "40.60", "68.13"});
  return 0;
}
