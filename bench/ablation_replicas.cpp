// Ablation: replica count vs read latency vs monthly cost (§3.3.3).
//
// The paper argues fewer replicas cut storage + update-traffic cost while
// nearby DCs' fast tiers keep latency acceptable. This sweep places 1..4
// replicas (always starting from US East) under eventual consistency,
// measures get latency from every region, and bills storage + cross-DC
// replication traffic with the Table 4 cost model.
#include "harness.h"
#include "common/units.h"
#include "cost/cost_model.h"

using namespace wiera::bench;
namespace geo = wiera::geo;
using namespace wiera;

namespace {

std::string policy_for_replicas(int replicas) {
  static const char* kRegions[] = {"US-East", "US-West", "EU-West",
                                   "Asia-East"};
  std::string out = "Wiera ReplicaSweep() {\n";
  for (int r = 0; r < replicas; ++r) {
    out += str_format(
        "   Region%d = {name:LowLatencyInstance, region:%s,\n"
        "      tier1 = {name:LocalMemory, size=5G},\n"
        "      tier2 = {name:LocalDisk, size=5G} }\n",
        r + 1, kRegions[r]);
  }
  out +=
      "   event(insert.into) : response {\n"
      "      store(what:insert.object, to:local_instance)\n"
      "      queue(what:insert.object, to:all_regions)\n"
      "   }\n}\n";
  return out;
}

}  // namespace

int main() {
  constexpr int kObjects = 64;
  constexpr int64_t kObjectSize = 64 * KiB;

  print_header("Ablation: replica count vs get latency vs monthly cost "
               "(64 KiB objects, eventual consistency)");
  print_row({"replicas", "useast_ms", "uswest_ms", "euwest_ms", "asia_ms",
             "storage_$/mo", "egress_$"},
            13);

  for (int replicas = 1; replicas <= 4; ++replicas) {
    PaperCluster cluster(13);
    auto options = cluster.options_for(policy_for_replicas(replicas));
    options.queue_flush_interval = msec(100);
    auto peers = cluster.controller.start_instances("sweep",
                                                    std::move(options));
    if (!peers.ok()) {
      std::fprintf(stderr, "%s\n", peers.status().to_string().c_str());
      return 1;
    }

    // Load from US East, wait for propagation.
    geo::WieraClient loader(cluster.sim, cluster.network, cluster.registry,
                            "loader", "client-us-east", *peers);
    cluster.run([&]() -> sim::Task<void> {
      for (int i = 0; i < kObjects; ++i) {
        auto put = co_await loader.put("obj" + std::to_string(i),
                                       Blob::zeros(kObjectSize));
        if (!put.ok()) std::abort();
      }
      co_await cluster.sim.delay(sec(10));  // drain queues
    });

    // Get latency per client region (clients always read their closest
    // replica; with fewer replicas that replica is farther away).
    std::vector<std::string> cells{str_format("%d", replicas)};
    for (const std::string& region : paper_regions()) {
      // paper_regions() order: us-west, us-east, eu-west, asia-east; print
      // in table order us-east first.
      (void)region;
    }
    const std::vector<std::string> table_order = {"us-east", "us-west",
                                                  "eu-west", "asia-east"};
    for (const std::string& region : table_order) {
      geo::WieraClient reader(cluster.sim, cluster.network, cluster.registry,
                              "reader-" + region, "client-" + region, *peers);
      LatencyHistogram hist;
      cluster.run([&]() -> sim::Task<void> {
        for (int i = 0; i < kObjects; ++i) {
          const TimePoint start = cluster.sim.now();
          auto got = co_await reader.get("obj" + std::to_string(i));
          if (got.ok()) hist.record(cluster.sim.now() - start);
        }
      });
      cells.push_back(fmt_ms(hist.mean()));
    }

    // Cost: storage across replicas (memory tier treated as cache — bill
    // the disk copies) + replication egress observed on the wire.
    double storage = 0;
    for (const std::string& id : *peers) {
      auto* peer = cluster.controller.peer(id);
      if (auto* tier = peer->local().tier_by_label("tier2")) {
        storage += cost::CostModel::bill_tier(*tier, 1.0);
      }
    }
    const double egress =
        cost::CostModel::bill_traffic(cluster.network.traffic());
    cells.push_back(str_format("%.4f", storage));
    cells.push_back(str_format("%.4f", egress));
    print_row(cells, 13);
    print_metrics(cluster.sim,
                  str_format("%d replica(s)", replicas),
                  {"wiera_replications_", "wiera_client_get_latency_us"});
  }
  std::printf(
      "\nreading: each added replica cuts far-region read latency but "
      "multiplies storage cost and adds cross-DC update egress "
      "(the §3.3.3 tradeoff).\n");
  return 0;
}
