// Shared setup for the paper-reproduction benches: the §5 deployment
// (Wiera controller + ZooKeeper in US East; Tiera servers in US East,
// US West, EU West, Asia East; clients co-located with instances) and
// small table-printing helpers.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "wiera/client.h"
#include "wiera/controller.h"

namespace wiera::bench {

// The four paper regions, in the order the paper lists them.
inline const std::vector<std::string>& paper_regions() {
  static const std::vector<std::string> kRegions = {
      "us-west", "us-east", "eu-west", "asia-east"};
  return kRegions;
}

struct PaperCluster {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  geo::WieraController controller;
  std::vector<std::unique_ptr<geo::TieraServer>> servers;

  explicit PaperCluster(uint64_t seed = 1, double jitter = 0.05)
      : sim(seed),
        network(sim, make_topology(jitter)),
        controller(sim, network, registry,
                   geo::WieraController::Config{"wiera-controller", sec(1),
                                                  0}) {
    for (const std::string& region : paper_regions()) {
      const std::string node = "tiera-" + region;
      servers.push_back(std::make_unique<geo::TieraServer>(
          sim, network, registry, node));
      controller.register_server(servers.back().get());
    }
  }

  static net::Topology make_topology(double jitter) {
    net::Topology topo = net::Topology::paper_default();
    topo.set_jitter_fraction(jitter);
    topo.add_node("wiera-controller", "aws-us-east");
    for (const std::string& region : paper_regions()) {
      topo.add_node("tiera-" + region, "aws-" + region);
      topo.add_node("client-" + region, "aws-" + region);
    }
    return topo;
  }

  geo::WieraController::StartOptions options_for(
      std::string_view policy_src, Duration timer_param = sec(10)) {
    geo::WieraController::StartOptions options;
    auto doc = policy::parse_policy(policy_src);
    if (!doc.ok()) {
      std::fprintf(stderr, "policy parse error: %s\n",
                   doc.status().to_string().c_str());
      std::abort();
    }
    options.global = std::move(doc).value();
    options.local_params["t"] = policy::Value::duration_of(timer_param);
    return options;
  }

  // Run `body` then stop (instances keep timers alive forever otherwise).
  template <typename F>
  void run(F&& body) {
    bool done = false;
    auto wrapper = [](sim::Simulation& s, F b, bool& flag) -> sim::Task<void> {
      co_await b();
      flag = true;
      s.stop();
    };
    sim.spawn(wrapper(sim, std::forward<F>(body), done));
    sim.run();
    if (!done) {
      std::fprintf(stderr, "bench body did not complete\n");
      std::abort();
    }
  }
};

// ---- wall-clock measurement (bench trajectory, docs/PERFORMANCE.md) ----
//
// Real (host) time spent executing the simulation — the "how fast does the
// simulator itself run" axis tracked in BENCH_micro.json. Contract: run all
// warm-up work (populating tiers, first-touch allocations, arena fill)
// BEFORE start(), so warm-up never counts against the measured wall-clock;
// folding it in understates steady-state throughput on short runs. Host
// time never feeds back into simulated behavior, so reading it here is
// determinism-safe (and bench/ is outside the lint's sim-reachable set).
class WallTimer {
 public:
  void start() { begin_ = std::chrono::steady_clock::now(); }
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - begin_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point begin_{};
};

// ---- output helpers ----

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Per-figure registry snapshot (docs/OBSERVABILITY.md): every bench reports
// its counters through Registry::render_text, so all figures share one
// metric vocabulary instead of ad-hoc printf fields. `prefixes` filters to
// the families a figure cares about ("tiera_", "wiera_client_", ...); empty
// prints everything. WIERA_BENCH_METRICS=0 silences the snapshots.
inline void print_metrics(sim::Simulation& sim, const std::string& title,
                          std::initializer_list<const char*> prefixes = {}) {
  const char* env = std::getenv("WIERA_BENCH_METRICS");
  if (env != nullptr && std::strcmp(env, "0") == 0) return;
  std::printf("\n--- metrics: %s ---\n", title.c_str());
  const std::string text = sim.telemetry().registry().render_text();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    // "# TYPE <name> <kind>" headers carry the family name at offset 7.
    const std::string_view probe =
        line.rfind("# TYPE ", 0) == 0 ? line.substr(7) : line;
    bool keep = prefixes.size() == 0;
    for (const char* prefix : prefixes) {
      if (probe.rfind(prefix, 0) == 0) keep = true;
    }
    if (keep) std::printf("%.*s\n", static_cast<int>(line.size()),
                          line.data());
  }
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt_ms(Duration d) { return str_format("%.2f", d.ms()); }
inline std::string fmt_pct(double f) { return str_format("%.0f%%", f * 100); }

}  // namespace wiera::bench
