// Shared setup for the paper-reproduction benches: the §5 deployment
// (Wiera controller + ZooKeeper in US East; Tiera servers in US East,
// US West, EU West, Asia East; clients co-located with instances) and
// small table-printing helpers.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "policy/builtin_policies.h"
#include "policy/parser.h"
#include "wiera/client.h"
#include "wiera/controller.h"

namespace wiera::bench {

// The four paper regions, in the order the paper lists them.
inline const std::vector<std::string>& paper_regions() {
  static const std::vector<std::string> kRegions = {
      "us-west", "us-east", "eu-west", "asia-east"};
  return kRegions;
}

struct PaperCluster {
  sim::Simulation sim;
  net::Network network;
  rpc::Registry registry;
  geo::WieraController controller;
  std::vector<std::unique_ptr<geo::TieraServer>> servers;

  explicit PaperCluster(uint64_t seed = 1, double jitter = 0.05)
      : sim(seed),
        network(sim, make_topology(jitter)),
        controller(sim, network, registry,
                   geo::WieraController::Config{"wiera-controller", sec(1),
                                                  0}) {
    for (const std::string& region : paper_regions()) {
      const std::string node = "tiera-" + region;
      servers.push_back(std::make_unique<geo::TieraServer>(
          sim, network, registry, node));
      controller.register_server(servers.back().get());
    }
  }

  static net::Topology make_topology(double jitter) {
    net::Topology topo = net::Topology::paper_default();
    topo.set_jitter_fraction(jitter);
    topo.add_node("wiera-controller", "aws-us-east");
    for (const std::string& region : paper_regions()) {
      topo.add_node("tiera-" + region, "aws-" + region);
      topo.add_node("client-" + region, "aws-" + region);
    }
    return topo;
  }

  geo::WieraController::StartOptions options_for(
      std::string_view policy_src, Duration timer_param = sec(10)) {
    geo::WieraController::StartOptions options;
    auto doc = policy::parse_policy(policy_src);
    if (!doc.ok()) {
      std::fprintf(stderr, "policy parse error: %s\n",
                   doc.status().to_string().c_str());
      std::abort();
    }
    options.global = std::move(doc).value();
    options.local_params["t"] = policy::Value::duration_of(timer_param);
    return options;
  }

  // Run `body` then stop (instances keep timers alive forever otherwise).
  template <typename F>
  void run(F&& body) {
    bool done = false;
    auto wrapper = [](sim::Simulation& s, F b, bool& flag) -> sim::Task<void> {
      co_await b();
      flag = true;
      s.stop();
    };
    sim.spawn(wrapper(sim, std::forward<F>(body), done));
    sim.run();
    if (!done) {
      std::fprintf(stderr, "bench body did not complete\n");
      std::abort();
    }
  }
};

// ---- output helpers ----

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt_ms(Duration d) { return str_format("%.2f", d.ms()); }
inline std::string fmt_pct(double f) { return str_format("%.0f%%", f * 100); }

}  // namespace wiera::bench
