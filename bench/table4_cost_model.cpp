// Table 4 + the §5.3 cost arithmetic.
//
// Prints the AWS US East price sheet the cost model implements (Table 4)
// and reproduces the worked example: 10 TB per instance, 80% cold for 120+
// hours -> moving cold data to S3-IA saves ~$700/month (from SSD) or
// ~$300/month (from HDD) per instance, and sharing one centralized S3-IA
// replica across 4 regions saves ~$300 more ($100 per non-central region).
#include "harness.h"
#include "common/units.h"
#include "cost/cost_model.h"

using namespace wiera::bench;
using namespace wiera;
using cost::CostModel;

int main() {
  print_header("Table 4: storage tier prices in AWS (US East)");
  print_row({"", "EBS(SSD)", "EBS(HDD)", "S3", "S3-IA", "unit"});
  auto p_ssd = cost::pricing_for(store::TierKind::kBlockSsd);
  auto p_hdd = cost::pricing_for(store::TierKind::kBlockHdd);
  auto p_s3 = cost::pricing_for(store::TierKind::kObjectS3);
  auto p_ia = cost::pricing_for(store::TierKind::kObjectS3IA);
  print_row({"Storage", str_format("$%.4g", p_ssd.storage_gb_month),
             str_format("$%.4g", p_hdd.storage_gb_month),
             str_format("$%.4g", p_s3.storage_gb_month),
             str_format("$%.4g", p_ia.storage_gb_month), "GB/Month"});
  print_row({"Put req", str_format("$%.4g", p_ssd.put_per_10k),
             str_format("$%.4g", p_hdd.put_per_10k),
             str_format("$%.4g", p_s3.put_per_10k),
             str_format("$%.4g", p_ia.put_per_10k), "10,000 reqs"});
  print_row({"Get req", str_format("$%.4g", p_ssd.get_per_10k),
             str_format("$%.4g", p_hdd.get_per_10k),
             str_format("$%.4g", p_s3.get_per_10k),
             str_format("$%.4g", p_ia.get_per_10k), "10,000 reqs"});
  print_row({"Net (in-DC)", "$0", "$0", "$0", "$0", "GB"});
  print_row({"Net (out)", "$0.09", "$0.09", "$0.09", "$0.09", "GB"});
  std::printf("cross-AWS-DC transfer: $%.2f/GB\n", cost::kCrossDcPerGb);

  print_header("Section 5.3 worked example: 10TB/instance, 80% cold, "
               "4 regions");
  const auto s = cost::cold_data_savings(10000 * GB, 0.8, 4);
  print_row({"config", "monthly_cost", ""}, 26);
  print_row({"all data on EBS SSD", str_format("$%.0f", s.monthly_cost_hot_ssd)},
            26);
  print_row({"hot SSD + cold S3-IA",
             str_format("$%.0f", s.monthly_cost_tiered_ssd)},
            26);
  print_row({"all data on EBS HDD", str_format("$%.0f", s.monthly_cost_hot_hdd)},
            26);
  print_row({"hot HDD + cold S3-IA",
             str_format("$%.0f", s.monthly_cost_tiered_hdd)},
            26);

  print_header("Savings (paper -> measured)");
  std::printf(
      "per-instance, from SSD (paper ~$700/month): $%.0f\n"
      "per-instance, from HDD (paper ~$300/month): $%.0f\n"
      "extra from single centralized cold replica across 4 regions\n"
      "  (paper ~$300/month, i.e. $100 per non-central region): $%.0f\n",
      s.saving_per_instance_ssd, s.saving_per_instance_hdd,
      s.saving_centralized_extra);
  return 0;
}
