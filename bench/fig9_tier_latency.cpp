// Figure 9 — "Operations Latencies for 4KB in US East" (§5.3).
//
// One Tiera instance per storage tier (EBS SSD gp2, EBS HDD magnetic, S3,
// S3-IA) inside a single DC; the application issues 4 KB put/get pairs
// through the instance and we report mean latencies per tier.
//
// As in the paper, the block tiers are measured under memory pressure (the
// paper runs a memory-intensive application so EBS shows its native device
// latency instead of <1 ms buffer-cache hits); we also print the cached
// case to show the effect the paper describes.
#include "harness.h"
#include "tiera/instance.h"

using namespace wiera::bench;
using namespace wiera;

namespace {

struct TierResult {
  std::string name;
  LatencyHistogram put_hist;
  LatencyHistogram get_hist;
};

TierResult measure_tier(const std::string& label, const std::string& dsl_name,
                        bool memory_pressure, int ops, uint64_t seed) {
  sim::Simulation sim(seed);
  tiera::TieraInstance::Config config;
  config.instance_id = "us-east-instance";
  config.region = "us-east";
  auto doc = policy::parse_policy(
      "Tiera OneTier() { tier1: {name: " + dsl_name + ", size: 100G}; }");
  config.policy = std::move(doc).value();
  config.tier_tweak = [&](const std::string&, store::TierSpec& spec) {
    spec.buffer_cache = true;  // EBS sits behind the OS page cache
  };
  tiera::TieraInstance instance(sim, std::move(config));
  if (auto* block =
          dynamic_cast<store::BlockTier*>(instance.tier_by_label("tier1"))) {
    block->set_memory_pressure(memory_pressure);
  }

  TierResult result;
  result.name = label;
  bool done = false;
  auto body = [&]() -> sim::Task<void> {
    for (int i = 0; i < ops; ++i) {
      const std::string key = "obj" + std::to_string(i % 64);
      TimePoint start = sim.now();
      auto put = co_await instance.put(key, Blob::zeros(4096),
                                       {.direct = memory_pressure});
      if (put.ok()) result.put_hist.record(sim.now() - start);
      start = sim.now();
      auto got = co_await instance.get(key, {.direct = memory_pressure});
      if (got.ok()) result.get_hist.record(sim.now() - start);
    }
    done = true;
  };
  sim.spawn(body());
  sim.run();
  if (!done) std::abort();
  print_metrics(sim, label, {"tiera_"});
  return result;
}

}  // namespace

int main() {
  const int kOps = 500;

  print_header("Figure 9: 4KB operation latency per storage tier, US East "
               "(memory throttled, as in the paper)");
  print_row({"tier", "get_ms", "put_ms", "paper_order"});
  const struct {
    const char* label;
    const char* dsl;
    const char* note;
  } tiers[] = {
      {"EBS-SSD(gp2)", "EBS-SSD", "fastest"},
      {"EBS-HDD(magnetic)", "EBS-HDD", "middle"},
      {"S3", "S3", "slow"},
      {"S3-IA", "S3-IA", "slowest"},
  };
  std::vector<TierResult> results;
  for (const auto& tier : tiers) {
    results.push_back(
        measure_tier(tier.label, tier.dsl, /*memory_pressure=*/true, kOps, 9));
    print_row({tier.label, fmt_ms(results.back().get_hist.mean()),
               fmt_ms(results.back().put_hist.mean()), tier.note});
  }

  print_header("Buffer-cache effect (paper: \"<1ms regardless of EBS type "
               "if there is enough memory\")");
  print_row({"tier", "get_ms", "put_ms"});
  for (const char* dsl : {"EBS-SSD", "EBS-HDD"}) {
    TierResult cached =
        measure_tier(std::string(dsl) + " (cached)", dsl,
                     /*memory_pressure=*/false, kOps, 9);
    print_row({cached.name, fmt_ms(cached.get_hist.mean()),
               fmt_ms(cached.put_hist.mean())});
  }

  // Shape check: SSD < HDD < S3 < S3-IA on gets.
  const bool ordered =
      results[0].get_hist.mean() < results[1].get_hist.mean() &&
      results[1].get_hist.mean() < results[2].get_hist.mean() &&
      results[2].get_hist.mean() < results[3].get_hist.mean();
  std::printf("\nordering SSD < HDD < S3 < S3-IA (paper: yes): %s\n",
              ordered ? "yes" : "NO");
  return 0;
}
