// Ablation: DynamicConsistency threshold sensitivity.
//
// The Fig. 5a policy hard-codes 800 ms / 30 s. This sweep varies both
// thresholds under the same injected-delay schedule as the Fig. 7 bench
// and reports how many consistency switches occur and the application's
// mean put latency — quantifying the stability/responsiveness tradeoff:
// a low period threshold reacts to transients (more switches); a high
// latency threshold never reacts at all.
#include "harness.h"

using namespace wiera::bench;
namespace geo = wiera::geo;
using namespace wiera;

namespace {

std::string dynamic_policy(int latency_ms, int period_s) {
  return str_format(R"(
Wiera DynamicConsistency() {
   event(threshold.type == put) : response {
      if(threshold.latency > %d ms
         && threshold.period > %d seconds)
         change_policy(what:consistency,
                       to:EventualConsistency);
      else if (threshold.latency <= %d ms
               && threshold.period > %d seconds)
         change_policy(what:consistency,
                       to:MultiPrimariesConsistency);
   }
}
)",
                    latency_ms, period_s, latency_ms, period_s);
}

struct Outcome {
  int64_t switches;
  double mean_put_ms;
};

Outcome run_grid_point(int latency_ms, int period_s) {
  PaperCluster cluster(5);
  auto options =
      cluster.options_for(policy::builtin::multi_primaries_consistency());
  auto dyn = policy::parse_policy(dynamic_policy(latency_ms, period_s));
  if (!dyn.ok()) std::abort();
  options.dynamic_consistency = std::move(dyn).value();
  auto peers = cluster.controller.start_instances("grid", std::move(options));
  if (!peers.ok()) std::abort();

  // Same delay schedule as Fig. 7: two sustained delays + one transient.
  cluster.network.topology().inject_node_delay(
      "tiera-eu-west", msec(600), TimePoint(sec(60).us()),
      TimePoint(sec(110).us()));
  cluster.network.topology().inject_node_delay(
      "tiera-eu-west", msec(600), TimePoint(sec(170).us()),
      TimePoint(sec(215).us()));
  cluster.network.topology().inject_node_delay(
      "tiera-eu-west", msec(600), TimePoint(sec(270).us()),
      TimePoint(sec(285).us()));

  std::vector<std::unique_ptr<geo::WieraClient>> clients;
  LatencyHistogram put_hist;
  bool stop = false;
  auto writer = [&](geo::WieraClient* client, bool record) -> sim::Task<void> {
    int i = 0;
    while (!stop) {
      const TimePoint start = cluster.sim.now();
      auto put = co_await client->put("k" + std::to_string(i++ % 8),
                                      Blob::zeros(1024));
      if (record && put.ok()) put_hist.record(cluster.sim.now() - start);
      co_await cluster.sim.delay(msec(500));
    }
  };
  for (const std::string& region : paper_regions()) {
    clients.push_back(std::make_unique<geo::WieraClient>(
        cluster.sim, cluster.network, cluster.registry, "app-" + region,
        "client-" + region, *peers));
    cluster.sim.spawn(writer(clients.back().get(), region == "us-west"));
  }
  cluster.sim.run_until(TimePoint(sec(330).us()));
  stop = true;
  print_metrics(cluster.sim, "thresholds run", {"wiera_put_latency_us"});
  return Outcome{cluster.controller.consistency_changes(),
                 put_hist.mean().ms()};
}

}  // namespace

int main() {
  print_header("Ablation: DynamicConsistency threshold grid (same fault "
               "schedule as Fig. 7: two sustained delays + one 15 s "
               "transient)");
  print_row({"latency_thr", "period_thr", "switches", "mean_put_ms"}, 16);
  for (int latency_ms : {400, 800, 1600}) {
    for (int period_s : {10, 30, 60}) {
      Outcome o = run_grid_point(latency_ms, period_s);
      print_row({str_format("%dms", latency_ms), str_format("%ds", period_s),
                 str_format("%lld", (long long)o.switches),
                 str_format("%.1f", o.mean_put_ms)},
                16);
    }
  }
  std::printf(
      "\nreading: short periods (10s) also react to the transient delay and "
      "to jitter flapping near the threshold (extra switches, e.g. 1600ms "
      "sits right at the delayed put latency of ~1.5s); long periods (60s) "
      "miss real sustained faults entirely; the paper's 800ms/30s point "
      "switches exactly on the two sustained delays and ignores the "
      "transient.\n");
  return 0;
}
