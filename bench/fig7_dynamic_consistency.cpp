// Figure 7 — "Changing consistency at run-time" (§5.1).
//
// Setup (as in the paper): instances in US West, US East, EU West and Asia
// East under MultiPrimariesConsistency, with the DynamicConsistency policy
// (Fig. 5a: latency threshold 800 ms, period threshold 30 s). Clients in
// every region issue an update-heavy YCSB-A stream. Three delays are
// injected at one replica:
//   (a) a long delay -> sustained violation -> switch to Eventual;
//       after the delay clears, replication latencies recover -> switch back
//       (paper's point (1));
//   (b) same again (point (2));
//   (c) a short, transient delay (< 30 s) -> correctly ignored.
//
// Output: the put-latency timeline observed by the US West application (the
// bold line in Fig. 7) plus the consistency-mode track, and a summary of
// paper-vs-measured checkpoints.
#include "harness.h"
#include "ycsb/ycsb.h"

using namespace wiera;
using namespace wiera::bench;

namespace {

struct Sample {
  double t_s;
  double latency_ms;
  geo::ConsistencyMode mode;
};

}  // namespace

int main() {
  PaperCluster cluster(/*seed=*/42);

  auto options =
      cluster.options_for(policy::builtin::multi_primaries_consistency());
  auto dyn = policy::parse_policy(policy::builtin::dynamic_consistency());
  options.dynamic_consistency = std::move(dyn).value();
  options.queue_flush_interval = msec(100);
  auto peers = cluster.controller.start_instances("fig7", std::move(options));
  if (!peers.ok()) {
    std::fprintf(stderr, "start: %s\n", peers.status().to_string().c_str());
    return 1;
  }

  // Delay injections at the EU replica (600 ms extra per message touching
  // it pushes MultiPrimaries puts well past the 800 ms threshold).
  struct Window {
    const char* label;
    double from_s, until_s;
  };
  const Window windows[] = {
      {"(a)", 60, 110},   // 50 s  > 30 s threshold -> switch
      {"(b)", 170, 215},  // 45 s  > 30 s threshold -> switch
      {"(c)", 270, 285},  // 15 s  < 30 s threshold -> ignored
  };
  for (const Window& w : windows) {
    cluster.network.topology().inject_node_delay(
        "tiera-eu-west", msec(600), TimePoint(sec(w.from_s).us()),
        TimePoint(sec(w.until_s).us()));
  }

  // One application client per region, update-heavy (YCSB A is 50%
  // updates; we record the put path the figure plots).
  std::vector<std::unique_ptr<geo::WieraClient>> clients;
  std::vector<Sample> west_samples;
  for (const std::string& region : paper_regions()) {
    clients.push_back(std::make_unique<geo::WieraClient>(
        cluster.sim, cluster.network, cluster.registry, "app-" + region,
        "client-" + region, *peers));
  }

  const Duration kRunTime = sec(330);
  bool stop = false;
  auto writer = [&](geo::WieraClient* client,
                    bool record) -> sim::Task<void> {
    ycsb::WorkloadGenerator generator(
        [] {
          auto spec = ycsb::WorkloadSpec::a();
          spec.record_count = 32;
          spec.value_size = 1024;
          return spec;
        }(),
        fnv1a64(client->id()));
    while (!stop) {
      auto op = generator.next();
      const TimePoint start = cluster.sim.now();
      auto result = co_await client->put(op.key, Blob::zeros(1024));
      if (record && result.ok()) {
        west_samples.push_back(
            Sample{start.seconds(), (cluster.sim.now() - start).ms(),
                   cluster.controller.current_mode("fig7")});
      }
      co_await cluster.sim.delay(msec(500));
    }
  };
  for (size_t i = 0; i < clients.size(); ++i) {
    cluster.sim.spawn(writer(clients[i].get(), /*record=*/i == 0));
  }

  cluster.sim.run_until(TimePoint(kRunTime.us()));
  stop = true;

  print_header("Figure 7: put latency timeline at US West (4 KB objects)");
  print_row({"time_s", "put_ms", "mode"});
  for (const Sample& s : west_samples) {
    print_row({str_format("%.1f", s.t_s), str_format("%.1f", s.latency_ms),
               std::string(consistency_mode_name(s.mode))});
  }

  // Summary: paper-vs-measured checkpoints.
  auto mean_in = [&](double from_s, double until_s) {
    double sum = 0;
    int n = 0;
    for (const Sample& s : west_samples) {
      if (s.t_s >= from_s && s.t_s < until_s) {
        sum += s.latency_ms;
        n++;
      }
    }
    return n == 0 ? 0.0 : sum / n;
  };
  auto eventual_fraction_in = [&](double from_s, double until_s) {
    int eventual = 0, n = 0;
    for (const Sample& s : west_samples) {
      if (s.t_s >= from_s && s.t_s < until_s) {
        n++;
        if (s.mode == geo::ConsistencyMode::kEventual) eventual++;
      }
    }
    return n == 0 ? 0.0 : static_cast<double>(eventual) / n;
  };

  print_header("Figure 7 summary (paper -> measured)");
  std::printf(
      "baseline MultiPrimaries put (paper ~400 ms): %.1f ms\n"
      "put latency while switched to Eventual (paper <10 ms): %.2f ms\n"
      "mode during delay (a) tail [95..110 s] (paper: Eventual): %s\n"
      "mode during delay (b) tail [205..215 s] (paper: Eventual): %s\n"
      "transient delay (c) ignored (paper: stays strong): %s\n"
      "total consistency changes (paper: 4 = 2 out + 2 back): %lld\n",
      mean_in(5, 55), mean_in(95, 108),
      eventual_fraction_in(95, 110) > 0.5 ? "Eventual" : "MultiPrimaries",
      eventual_fraction_in(205, 215) > 0.5 ? "Eventual" : "MultiPrimaries",
      eventual_fraction_in(272, 300) < 0.5 ? "yes" : "NO",
      static_cast<long long>(cluster.controller.consistency_changes()));
  print_metrics(cluster.sim, "fig7 dynamic consistency", {"wiera_"});
  return 0;
}
