// Ablation: consistency protocol x object size.
//
// DESIGN.md calls out the choice of consistency protocol as the dominant
// factor in put latency (§3.3.1 tradeoff discussion). This sweep measures
// put and get latency from a US West application for each protocol across
// object sizes, quantifying the tradeoffs the paper describes
// qualitatively:
//   MultiPrimaries    — lock RTT + synchronous broadcast (slowest put,
//                       always-fresh reads everywhere)
//   PrimaryBackupSync — no lock; pays forward + broadcast at the primary
//   PrimaryBackupAsync— forward only; replicas lag
//   Eventual          — local write only (fastest put)
#include "harness.h"
#include "common/units.h"

using namespace wiera::bench;
namespace geo = wiera::geo;
using namespace wiera;

namespace {

struct Point {
  std::string protocol;
  int64_t size;
  Duration put_mean;
  Duration get_mean;
};

Point run_point(const std::string& protocol, std::string_view policy_src,
                int64_t object_size, uint64_t seed) {
  PaperCluster cluster(seed);
  auto options = cluster.options_for(policy_src);
  options.queue_flush_interval = msec(100);
  auto peers = cluster.controller.start_instances("abl", std::move(options));
  if (!peers.ok()) std::abort();
  if (protocol == "PrimaryBackupAsync") {
    // Same policy as PrimaryBackupSync but with queued updates.
    bool done = false;
    auto flip = [&]() -> sim::Task<void> {
      Status st = co_await cluster.controller.change_consistency(
          "abl", geo::ConsistencyMode::kPrimaryBackupAsync);
      if (!st.ok()) std::abort();
      done = true;
      cluster.sim.stop();
    };
    cluster.sim.spawn(flip());
    cluster.sim.run();
    if (!done) std::abort();
  }

  geo::WieraClient client(cluster.sim, cluster.network, cluster.registry,
                          "app", "client-us-west", *peers);
  Point point;
  point.protocol = protocol;
  point.size = object_size;
  LatencyHistogram put_hist, get_hist;
  cluster.run([&]() -> sim::Task<void> {
    for (int i = 0; i < 40; ++i) {
      const std::string key = "k" + std::to_string(i % 8);
      TimePoint start = cluster.sim.now();
      auto put = co_await client.put(
          key, Blob::zeros(static_cast<size_t>(object_size)));
      if (put.ok()) put_hist.record(cluster.sim.now() - start);
      start = cluster.sim.now();
      auto got = co_await client.get(key);
      if (got.ok()) get_hist.record(cluster.sim.now() - start);
    }
  });
  point.put_mean = put_hist.mean();
  point.get_mean = get_hist.mean();
  print_metrics(cluster.sim, point.protocol, {"wiera_client_"});
  return point;
}

}  // namespace

int main() {
  const int64_t sizes[] = {1 * KiB, 64 * KiB, 1 * MiB};
  struct Protocol {
    const char* name;
    std::string_view (*policy)();
  };
  const Protocol protocols[] = {
      {"MultiPrimaries", policy::builtin::multi_primaries_consistency},
      {"PrimaryBackupSync", policy::builtin::primary_backup_consistency},
      {"PrimaryBackupAsync", policy::builtin::primary_backup_consistency},
      {"Eventual", policy::builtin::eventual_consistency},
  };

  print_header("Ablation: put/get latency (ms) by protocol and object size, "
               "client in US West");
  print_row({"protocol", "size", "put_ms", "get_ms"}, 20);
  for (const Protocol& protocol : protocols) {
    for (int64_t size : sizes) {
      Point p = run_point(protocol.name, protocol.policy(), size, 3);
      print_row({p.protocol,
                 p.size >= MiB ? str_format("%lldMiB", (long long)(p.size / MiB))
                               : str_format("%lldKiB", (long long)(p.size / KiB)),
                 fmt_ms(p.put_mean), fmt_ms(p.get_mean)},
                20);
    }
  }
  std::printf(
      "\nexpected shape: put latency MultiPrimaries > PrimaryBackupSync > "
      "PrimaryBackupAsync > Eventual; gets fast everywhere (local "
      "replicas)\n");
  return 0;
}
