// Google-benchmark micro-benchmarks for the substrates: DES kernel event
// throughput, task fan-out, RNG/zipfian generation, wire serialization,
// policy parsing/evaluation, lock-service cycles, storage-tier ops — plus a
// small end-to-end macro section (a PaperCluster put/get stream) measuring
// wall-clock per simulated second and client latency percentiles.
//
// Custom driver (replaces BENCHMARK_MAIN):
//   micro_bench [--quick] [--json PATH] [gbench flags...]
// --quick caps per-benchmark measuring time (CI gate); --json writes the
// machine-readable trajectory file (BENCH_micro.json schema, compared by
// scripts/bench_check.sh — see docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "coord/lock_service.h"
#include "harness.h"
#include "obs/sampler.h"
#include "policy/builtin_policies.h"
#include "policy/eval.h"
#include "policy/parser.h"
#include "rpc/wire.h"
#include "sim/obs_pipeline.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "store/tier.h"
#include "wiera/messages.h"
#include "ycsb/ycsb.h"

namespace wiera {
namespace {

// ------------------------------------------------------------ sim kernel

sim::Task<void> tick_loop(sim::Simulation& sim, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    co_await sim.delay(usec(1));
  }
}

void BM_SimDelayEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim.spawn(tick_loop(sim, state.range(0)));
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimDelayEvents)->Arg(1000)->Arg(10000);

sim::Task<int> small_task(sim::Simulation& sim) {
  co_await sim.delay(usec(1));
  co_return 1;
}

void BM_WhenAllFanout(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    int total = 0;
    auto driver = [](sim::Simulation& s, int n, int& out) -> sim::Task<void> {
      std::vector<sim::Task<int>> tasks;
      tasks.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) tasks.push_back(small_task(s));
      auto results = co_await sim::when_all(s, std::move(tasks));
      for (int v : results) out += v;
    };
    sim.spawn(driver(sim, width, total));
    sim.run();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_WhenAllFanout)->Arg(8)->Arg(64)->Arg(512);

// ------------------------------------------------------------ rng / ycsb

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_ZipfianNext(benchmark::State& state) {
  ycsb::ZipfianGenerator gen(static_cast<uint64_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next(rng));
}
BENCHMARK(BM_ZipfianNext)->Arg(1000)->Arg(1000000);

void BM_WorkloadGeneratorNext(benchmark::State& state) {
  auto spec = ycsb::WorkloadSpec::a();
  spec.record_count = 100000;
  ycsb::WorkloadGenerator gen(spec, 7);
  for (auto _ : state) {
    auto op = gen.next();
    benchmark::DoNotOptimize(op.key.size());
  }
}
BENCHMARK(BM_WorkloadGeneratorNext);

// ------------------------------------------------------------ wire format

// The RPC hot path as rpc::Endpoint actually runs it: encode into a
// segmented BodyView (payload appended as a shared segment, no memcpy) and
// decode a Blob that aliases the body's storage. Per-iteration cost is
// header scratch + refcount traffic, independent of payload size.
void BM_WireRoundTrip(benchmark::State& state) {
  const Blob payload = Blob::zeros(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rpc::WireWriter w;
    w.put_string("some-object-key");
    w.put_i64(42);
    w.put_blob(payload);
    rpc::Message msg{w.take_body()};
    rpc::WireReader r(msg.body);
    benchmark::DoNotOptimize(r.get_string());
    benchmark::DoNotOptimize(r.get_i64());
    benchmark::DoNotOptimize(r.get_blob().size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireRoundTrip)->Arg(128)->Arg(4096)->Arg(65536);

// The pre-zero-copy path kept for comparison: flatten the body into one
// contiguous byte vector and copy the payload back out on decode. The gap
// between this and BM_WireRoundTrip is the copy cost the BodyView design
// removes (docs/PERFORMANCE.md).
void BM_WireRoundTripFlat(benchmark::State& state) {
  const Blob payload = Blob::zeros(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rpc::WireWriter w;
    w.put_string("some-object-key");
    w.put_i64(42);
    w.put_blob(payload);
    Bytes data = w.take();
    rpc::WireReader r(data);
    benchmark::DoNotOptimize(r.get_string());
    benchmark::DoNotOptimize(r.get_i64());
    benchmark::DoNotOptimize(r.get_blob().size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireRoundTripFlat)->Arg(128)->Arg(4096)->Arg(65536);

// Replication fan-out: one payload encoded and decoded once per replica
// target. With shared segments all four decoded blobs alias the same
// storage — the payload is never duplicated per target.
void BM_ReplicateFanout(benchmark::State& state) {
  geo::ReplicateRequest req;
  req.key = "some-object-key";
  req.version = 3;
  req.value = Blob::zeros(static_cast<size_t>(state.range(0)));
  req.origin = "tiera-us-east";
  constexpr int kTargets = 4;
  for (auto _ : state) {
    size_t total = 0;
    for (int t = 0; t < kTargets; ++t) {
      rpc::Message msg = geo::encode(req);
      auto decoded = geo::decode_replicate_request(msg);
      total += decoded.value().value.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * kTargets);
}
BENCHMARK(BM_ReplicateFanout)->Arg(4096)->Arg(65536);

// ------------------------------------------------------------ policy

void BM_PolicyParse(benchmark::State& state) {
  const std::string_view src = policy::builtin::multi_primaries_consistency();
  for (auto _ : state) {
    auto doc = policy::parse_policy(src);
    benchmark::DoNotOptimize(doc.ok());
  }
}
BENCHMARK(BM_PolicyParse);

void BM_PolicyEvaluateCondition(benchmark::State& state) {
  using namespace policy;
  auto expr = make_binary(
      BinaryOp::kAnd,
      make_binary(BinaryOp::kGt, make_path({"threshold", "latency"}),
                  make_literal(Value::duration_of(msec(800)))),
      make_binary(BinaryOp::kGt, make_path({"threshold", "period"}),
                  make_literal(Value::duration_of(sec(30)))));
  MapContext ctx;
  ctx.set("threshold.latency", Value::duration_of(msec(900)));
  ctx.set("threshold.period", Value::duration_of(sec(45)));
  for (auto _ : state) {
    auto v = evaluate_condition(*expr, ctx);
    benchmark::DoNotOptimize(v.ok());
  }
}
BENCHMARK(BM_PolicyEvaluateCondition);

// ------------------------------------------------------------ lock service

void BM_LockAcquireReleaseCycle(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    net::Topology topo;
    topo.add_datacenter("dc", net::Provider::kAws, "us-east");
    topo.set_jitter_fraction(0);
    topo.add_node("zk", "dc");
    topo.add_node("client", "dc");
    net::Network network(sim, std::move(topo));
    rpc::Registry registry;
    rpc::Endpoint zk_ep(network, registry, "zk");
    coord::LockService service(sim, zk_ep);
    rpc::Endpoint client_ep(network, registry, "client");
    coord::LockClient client(client_ep, "zk");
    state.ResumeTiming();

    auto body = [](coord::LockClient c, int64_t n) -> sim::Task<void> {
      for (int64_t i = 0; i < n; ++i) {
        co_await c.acquire("k");
        co_await c.release("k");
      }
    };
    sim.spawn(body(client, state.range(0)));
    sim.run();
    benchmark::DoNotOptimize(service.acquires_served());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LockAcquireReleaseCycle)->Arg(100);

// ------------------------------------------------------------ storage tiers

void BM_MemoryTierPutGet(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    store::TierSpec spec;
    spec.name = "mem";
    spec.kind = store::TierKind::kMemory;
    spec.capacity_bytes = 1 * GiB;
    spec.jitter_fraction = 0;
    auto tier = store::make_tier(sim, spec);
    state.ResumeTiming();

    auto body = [](store::StorageTier* t, int64_t n) -> sim::Task<void> {
      for (int64_t i = 0; i < n; ++i) {
        co_await t->put("k" + std::to_string(i % 32), Blob::zeros(4096), {});
        auto r = co_await t->get("k" + std::to_string(i % 32), {});
        (void)r;
      }
    };
    sim.spawn(body(tier.get(), state.range(0)));
    sim.run();
    benchmark::DoNotOptimize(tier->stats().gets);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_MemoryTierPutGet)->Arg(256);

// ------------------------------------------------------------ obs sampler

// Pure scrape cost: one Sampler pass over a registry with `range` counter
// and histogram families (the per-tick work an armed ObsPipeline adds).
void BM_SamplerScrape(benchmark::State& state) {
  obs::Registry reg;
  const int families = static_cast<int>(state.range(0));
  std::vector<obs::Counter*> counters;
  for (int i = 0; i < families; ++i) {
    counters.push_back(reg.counter("bench_c" + std::to_string(i) + "_total",
                                   {{"instance", "NYC"}}));
    reg.histogram("bench_h" + std::to_string(i) + "_us")->record(msec(i + 1));
  }
  obs::Sampler sampler;
  int64_t t_us = 0;
  for (auto _ : state) {
    for (auto* c : counters) c->inc();
    t_us += 10'000;
    sampler.scrape(reg, TimePoint(t_us));
    benchmark::DoNotOptimize(sampler.scrapes());
  }
  state.SetItemsProcessed(state.iterations() * families);
}
BENCHMARK(BM_SamplerScrape)->Arg(16)->Arg(128);

// ------------------------------------------------- trajectory driver

// Console output as usual, plus a machine-readable record of every run
// (per-iteration time and throughput) for BENCH_micro.json.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double ns_per_iter = 0;
    double ops_per_sec = 0;
    double bytes_per_sec = 0;
  };
  std::vector<Row> rows;

  bool ReportContext(const Context& context) override {
    return ConsoleReporter::ReportContext(context);
  }
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Row r;
      r.name = run.benchmark_name();
      const double secs = run.real_accumulated_time;
      const double iters = static_cast<double>(run.iterations);
      if (secs > 0 && iters > 0) {
        r.ns_per_iter = secs * 1e9 / iters;
        r.ops_per_sec = iters / secs;
      }
      // SetItemsProcessed/SetBytesProcessed land in user counters; prefer
      // items/sec as the benchmark's own throughput notion when present.
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) r.ops_per_sec = it->second.value;
      auto bt = run.counters.find("bytes_per_second");
      if (bt != run.counters.end()) r.bytes_per_sec = bt->second.value;
      rows.push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

// End-to-end macro measurement: a PaperCluster under MultiPrimaries serving
// a put/get stream from one client. Tracks (a) host wall-clock per
// simulated second — the simulator-speed axis — and (b) client latency
// percentiles out of the obs::Registry histograms — the simulated-latency
// axis. Warm-up ops run before WallTimer::start() per the harness contract.
struct MacroStats {
  double ops = 0;
  double wall_us = 0;
  double sim_seconds = 0;
  double put_p50_us = 0;
  double put_p99_us = 0;
  double get_p50_us = 0;
  double get_p99_us = 0;
  // Scrapes the armed ObsPipeline performed (0 for unsampled runs).
  double scrapes = 0;

  double ops_per_wall_sec() const {
    return wall_us > 0 ? ops / (wall_us / 1e6) : 0;
  }
  double wall_us_per_sim_sec() const {
    return sim_seconds > 0 ? wall_us / sim_seconds : 0;
  }
};

// scrape_interval > 0 arms the ObsPipeline for the run (the sampler-overhead
// section, docs/METRICS_PIPELINE.md); zero keeps the seed unsampled path.
MacroStats run_macro(bool quick,
                     Duration scrape_interval = Duration::zero()) {
  using wiera::bench::PaperCluster;
  MacroStats out;
  PaperCluster cluster(/*seed=*/7);
  auto options =
      cluster.options_for(policy::builtin::multi_primaries_consistency());
  auto peers = cluster.controller.start_instances("bench", std::move(options));
  if (!peers.ok()) {
    std::fprintf(stderr, "macro start: %s\n",
                 peers.status().to_string().c_str());
    std::abort();
  }
  sim::ObsPipeline pipeline(cluster.sim);
  if (scrape_interval > Duration::zero()) {
    sim::ObsPipeline::Config obs_config;
    obs_config.interval = scrape_interval;
    // The harness stops the sim when the workload body completes, so a far
    // horizon just means "scrape for the whole measured run".
    obs_config.until = TimePoint::origin() + sec(100000);
    pipeline.arm(obs_config);
  }
  geo::WieraClient client(cluster.sim, cluster.network, cluster.registry,
                          "app-us-east", "client-us-east", *peers);
  const int kWarmup = quick ? 50 : 200;
  const int kOps = quick ? 400 : 2000;
  wiera::bench::WallTimer timer;
  cluster.run([&]() -> sim::Task<void> {
    const Blob value = Blob::zeros(4096);
    for (int i = 0; i < kWarmup; ++i) {
      co_await client.put("warm" + std::to_string(i % 16), value);
      co_await client.get("warm" + std::to_string(i % 16));
    }
    timer.start();
    const TimePoint sim_start = cluster.sim.now();
    for (int i = 0; i < kOps; ++i) {
      co_await client.put("key" + std::to_string(i % 64), value);
      co_await client.get("key" + std::to_string(i % 64));
    }
    out.wall_us = timer.elapsed_us();
    out.sim_seconds = (cluster.sim.now() - sim_start).seconds();
    out.ops = 2.0 * kOps;
  });
  auto& registry = cluster.sim.telemetry().registry();
  const obs::LabelSet labels{{"client", "app-us-east"}};
  auto* put_hist = registry.histogram("wiera_client_put_latency_us", labels);
  auto* get_hist = registry.histogram("wiera_client_get_latency_us", labels);
  out.put_p50_us = static_cast<double>(put_hist->percentile(0.50).us());
  out.put_p99_us = static_cast<double>(put_hist->percentile(0.99).us());
  out.get_p50_us = static_cast<double>(get_hist->percentile(0.50).us());
  out.get_p99_us = static_cast<double>(get_hist->percentile(0.99).us());
  if (pipeline.sampler() != nullptr) {
    out.scrapes = static_cast<double>(pipeline.sampler()->scrapes());
  }
  return out;
}

// Sampler-overhead section (docs/METRICS_PIPELINE.md): the identical macro
// stream unsampled, scraped every 10ms, and scraped every 1ms of virtual
// time. The delta in ops/wall-sec is the host-side cost an armed pipeline
// adds; the virtual-time schedule cost is already visible in sim_seconds.
struct SamplerOverhead {
  MacroStats off;
  MacroStats per10ms;
  MacroStats per1ms;

  static double overhead_pct(const MacroStats& base, const MacroStats& with) {
    const double a = base.ops_per_wall_sec();
    const double b = with.ops_per_wall_sec();
    return a > 0 ? (a - b) / a * 100.0 : 0;
  }
};

SamplerOverhead run_sampler_overhead(bool quick) {
  SamplerOverhead out;
  out.off = run_macro(quick);
  out.per10ms = run_macro(quick, msec(10));
  out.per1ms = run_macro(quick, msec(1));
  return out;
}

void write_json(const std::string& path, bool quick,
                const std::vector<RecordingReporter::Row>& rows,
                const MacroStats& macro, const SamplerOverhead& sampler) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(f, "{\n  \"schema\": \"wiera-bench-micro/1\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f, "  \"micro\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_iter\": %.2f, "
                 "\"ops_per_sec\": %.2f, \"bytes_per_sec\": %.2f}%s\n",
                 r.name.c_str(), r.ns_per_iter, r.ops_per_sec,
                 r.bytes_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"macro\": {\n");
  std::fprintf(f, "    \"ops\": %.0f,\n", macro.ops);
  std::fprintf(f, "    \"wall_us\": %.1f,\n", macro.wall_us);
  std::fprintf(f, "    \"ops_per_wall_sec\": %.2f,\n",
               macro.ops_per_wall_sec());
  std::fprintf(f, "    \"sim_seconds\": %.3f,\n", macro.sim_seconds);
  std::fprintf(f, "    \"wall_us_per_sim_sec\": %.1f,\n",
               macro.wall_us_per_sim_sec());
  std::fprintf(f, "    \"put_p50_us\": %.0f,\n", macro.put_p50_us);
  std::fprintf(f, "    \"put_p99_us\": %.0f,\n", macro.put_p99_us);
  std::fprintf(f, "    \"get_p50_us\": %.0f,\n", macro.get_p50_us);
  std::fprintf(f, "    \"get_p99_us\": %.0f\n", macro.get_p99_us);
  std::fprintf(f, "  },\n  \"sampler\": {\n");
  std::fprintf(f, "    \"off_ops_per_wall_sec\": %.2f,\n",
               sampler.off.ops_per_wall_sec());
  std::fprintf(f, "    \"interval_10ms_ops_per_wall_sec\": %.2f,\n",
               sampler.per10ms.ops_per_wall_sec());
  std::fprintf(f, "    \"interval_1ms_ops_per_wall_sec\": %.2f,\n",
               sampler.per1ms.ops_per_wall_sec());
  std::fprintf(f, "    \"scrapes_10ms\": %.0f,\n", sampler.per10ms.scrapes);
  std::fprintf(f, "    \"scrapes_1ms\": %.0f,\n", sampler.per1ms.scrapes);
  std::fprintf(f, "    \"overhead_10ms_pct\": %.2f,\n",
               SamplerOverhead::overhead_pct(sampler.off, sampler.per10ms));
  std::fprintf(f, "    \"overhead_1ms_pct\": %.2f\n",
               SamplerOverhead::overhead_pct(sampler.off, sampler.per1ms));
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace wiera

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  std::vector<char*> gb_args;
  gb_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      gb_args.push_back(argv[i]);
    }
  }
  static char min_time_flag[] = "--benchmark_min_time=0.05";
  if (quick) gb_args.push_back(min_time_flag);
  int gb_argc = static_cast<int>(gb_args.size());
  benchmark::Initialize(&gb_argc, gb_args.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_args.data())) {
    return 1;
  }

  wiera::RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // The overhead section's unsampled run doubles as the macro measurement.
  wiera::SamplerOverhead sampler = wiera::run_sampler_overhead(quick);
  const wiera::MacroStats& macro = sampler.off;
  std::printf("\n--- macro: PaperCluster put/get (MultiPrimaries) ---\n");
  std::printf("ops %.0f | wall %.1f ms | %.0f ops/wall-sec | "
              "%.1f ms-wall per sim-sec\n",
              macro.ops, macro.wall_us / 1e3, macro.ops_per_wall_sec(),
              macro.wall_us_per_sim_sec() / 1e3);
  std::printf("put p50/p99 %.0f/%.0f us | get p50/p99 %.0f/%.0f us\n",
              macro.put_p50_us, macro.put_p99_us, macro.get_p50_us,
              macro.get_p99_us);
  std::printf("\n--- sampler overhead: same stream, ObsPipeline armed ---\n");
  std::printf("off %.0f ops/wall-sec | 10ms %.0f (%.1f%% overhead, "
              "%.0f scrapes) | 1ms %.0f (%.1f%% overhead, %.0f scrapes)\n",
              sampler.off.ops_per_wall_sec(),
              sampler.per10ms.ops_per_wall_sec(),
              wiera::SamplerOverhead::overhead_pct(sampler.off,
                                                   sampler.per10ms),
              sampler.per10ms.scrapes, sampler.per1ms.ops_per_wall_sec(),
              wiera::SamplerOverhead::overhead_pct(sampler.off,
                                                   sampler.per1ms),
              sampler.per1ms.scrapes);

  if (!json_path.empty()) {
    wiera::write_json(json_path, quick, reporter.rows, macro, sampler);
    std::printf("wrote %s\n", json_path.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
