// Google-benchmark micro-benchmarks for the substrates: DES kernel event
// throughput, task fan-out, RNG/zipfian generation, wire serialization,
// policy parsing/evaluation, lock-service cycles, storage-tier ops.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/units.h"
#include "coord/lock_service.h"
#include "policy/builtin_policies.h"
#include "policy/eval.h"
#include "policy/parser.h"
#include "rpc/wire.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "store/tier.h"
#include "ycsb/ycsb.h"

namespace wiera {
namespace {

// ------------------------------------------------------------ sim kernel

sim::Task<void> tick_loop(sim::Simulation& sim, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    co_await sim.delay(usec(1));
  }
}

void BM_SimDelayEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim.spawn(tick_loop(sim, state.range(0)));
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimDelayEvents)->Arg(1000)->Arg(10000);

sim::Task<int> small_task(sim::Simulation& sim) {
  co_await sim.delay(usec(1));
  co_return 1;
}

void BM_WhenAllFanout(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    int total = 0;
    auto driver = [](sim::Simulation& s, int n, int& out) -> sim::Task<void> {
      std::vector<sim::Task<int>> tasks;
      tasks.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) tasks.push_back(small_task(s));
      auto results = co_await sim::when_all(s, std::move(tasks));
      for (int v : results) out += v;
    };
    sim.spawn(driver(sim, width, total));
    sim.run();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_WhenAllFanout)->Arg(8)->Arg(64)->Arg(512);

// ------------------------------------------------------------ rng / ycsb

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_ZipfianNext(benchmark::State& state) {
  ycsb::ZipfianGenerator gen(static_cast<uint64_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next(rng));
}
BENCHMARK(BM_ZipfianNext)->Arg(1000)->Arg(1000000);

void BM_WorkloadGeneratorNext(benchmark::State& state) {
  auto spec = ycsb::WorkloadSpec::a();
  spec.record_count = 100000;
  ycsb::WorkloadGenerator gen(spec, 7);
  for (auto _ : state) {
    auto op = gen.next();
    benchmark::DoNotOptimize(op.key.size());
  }
}
BENCHMARK(BM_WorkloadGeneratorNext);

// ------------------------------------------------------------ wire format

void BM_WireRoundTrip(benchmark::State& state) {
  const Blob payload = Blob::zeros(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rpc::WireWriter w;
    w.put_string("some-object-key");
    w.put_i64(42);
    w.put_blob(payload);
    Bytes data = w.take();
    rpc::WireReader r(data);
    benchmark::DoNotOptimize(r.get_string());
    benchmark::DoNotOptimize(r.get_i64());
    benchmark::DoNotOptimize(r.get_blob().size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireRoundTrip)->Arg(128)->Arg(4096)->Arg(65536);

// ------------------------------------------------------------ policy

void BM_PolicyParse(benchmark::State& state) {
  const std::string_view src = policy::builtin::multi_primaries_consistency();
  for (auto _ : state) {
    auto doc = policy::parse_policy(src);
    benchmark::DoNotOptimize(doc.ok());
  }
}
BENCHMARK(BM_PolicyParse);

void BM_PolicyEvaluateCondition(benchmark::State& state) {
  using namespace policy;
  auto expr = make_binary(
      BinaryOp::kAnd,
      make_binary(BinaryOp::kGt, make_path({"threshold", "latency"}),
                  make_literal(Value::duration_of(msec(800)))),
      make_binary(BinaryOp::kGt, make_path({"threshold", "period"}),
                  make_literal(Value::duration_of(sec(30)))));
  MapContext ctx;
  ctx.set("threshold.latency", Value::duration_of(msec(900)));
  ctx.set("threshold.period", Value::duration_of(sec(45)));
  for (auto _ : state) {
    auto v = evaluate_condition(*expr, ctx);
    benchmark::DoNotOptimize(v.ok());
  }
}
BENCHMARK(BM_PolicyEvaluateCondition);

// ------------------------------------------------------------ lock service

void BM_LockAcquireReleaseCycle(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    net::Topology topo;
    topo.add_datacenter("dc", net::Provider::kAws, "us-east");
    topo.set_jitter_fraction(0);
    topo.add_node("zk", "dc");
    topo.add_node("client", "dc");
    net::Network network(sim, std::move(topo));
    rpc::Registry registry;
    rpc::Endpoint zk_ep(network, registry, "zk");
    coord::LockService service(sim, zk_ep);
    rpc::Endpoint client_ep(network, registry, "client");
    coord::LockClient client(client_ep, "zk");
    state.ResumeTiming();

    auto body = [](coord::LockClient c, int64_t n) -> sim::Task<void> {
      for (int64_t i = 0; i < n; ++i) {
        co_await c.acquire("k");
        co_await c.release("k");
      }
    };
    sim.spawn(body(client, state.range(0)));
    sim.run();
    benchmark::DoNotOptimize(service.acquires_served());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LockAcquireReleaseCycle)->Arg(100);

// ------------------------------------------------------------ storage tiers

void BM_MemoryTierPutGet(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    store::TierSpec spec;
    spec.name = "mem";
    spec.kind = store::TierKind::kMemory;
    spec.capacity_bytes = 1 * GiB;
    spec.jitter_fraction = 0;
    auto tier = store::make_tier(sim, spec);
    state.ResumeTiming();

    auto body = [](store::StorageTier* t, int64_t n) -> sim::Task<void> {
      for (int64_t i = 0; i < n; ++i) {
        co_await t->put("k" + std::to_string(i % 32), Blob::zeros(4096), {});
        auto r = co_await t->get("k" + std::to_string(i % 32), {});
        (void)r;
      }
    };
    sim.spawn(body(tier.get(), state.range(0)));
    sim.run();
    benchmark::DoNotOptimize(tier->stats().gets);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_MemoryTierPutGet)->Arg(256);

}  // namespace
}  // namespace wiera

BENCHMARK_MAIN();
