#!/usr/bin/env bash
# Performance-regression gate (docs/PERFORMANCE.md): run the micro-benchmark
# suite in --quick mode and compare per-benchmark ops/sec against the
# committed baseline bench/baselines/BENCH_micro.json. A benchmark that
# drops more than 15% below baseline fails the gate.
#
# Usage:
#   scripts/bench_check.sh [BUILD_DIR]
#
#   BUILD_DIR  cmake build directory containing bench/micro_bench
#              (default: build)
#
# Environment:
#   WIERA_BENCH_GATE=0   skip the gate entirely (exit 77, which the ctest
#                        wrapper reports as SKIPPED) — for machines where
#                        wall-clock measurement is meaningless (emulation,
#                        heavily shared CI runners)
#   WIERA_BENCH_RUNS     best-of-N runs (default 3)
#
# Noise defenses (single-core CI containers jitter by 10-20%):
#   * best-of-N: noise only ever makes a run slower, so the max over N runs
#     estimates the machine's true capability;
#   * only tight-loop benchmarks are gated (wire codec, fan-out encode, RNG,
#     zipfian, workload gen, policy). Benchmarks built around PauseTiming or
#     OS-heavy setup (lock cycles, tier put/get, sim-kernel events) and the
#     macro wall-clock section are recorded in BENCH_micro.json but not
#     gated — their run-to-run variance exceeds any useful threshold.
set -u

BUILD_DIR="${1:-build}"
BENCH="${BUILD_DIR}/bench/micro_bench"
BASELINE="$(dirname "$0")/../bench/baselines/BENCH_micro.json"
RUNS="${WIERA_BENCH_RUNS:-3}"

if [ "${WIERA_BENCH_GATE:-1}" = "0" ]; then
  echo "bench_check: WIERA_BENCH_GATE=0 — skipping"
  exit 77
fi
if [ ! -x "${BENCH}" ]; then
  echo "bench_check: ${BENCH} not built" >&2
  exit 1
fi
if [ ! -f "${BASELINE}" ]; then
  echo "bench_check: baseline ${BASELINE} missing" >&2
  exit 1
fi

TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "${TMPDIR_BENCH}"' EXIT

# Gated set: tight measurement loops only (see header).
FILTER='BM_WireRoundTrip|BM_WireRoundTripFlat|BM_ReplicateFanout|BM_RngNextU64|BM_ZipfianNext|BM_WorkloadGeneratorNext|BM_PolicyParse|BM_PolicyEvaluateCondition'

for i in $(seq 1 "${RUNS}"); do
  "${BENCH}" --quick --json "${TMPDIR_BENCH}/run${i}.json" \
    "--benchmark_filter=${FILTER}" > /dev/null 2>&1 || {
    echo "bench_check: micro_bench run ${i} failed" >&2
    exit 1
  }
done

python3 - "${BASELINE}" "${TMPDIR_BENCH}" "${RUNS}" <<'EOF'
import json, sys

baseline_path, tmpdir, runs = sys.argv[1], sys.argv[2], int(sys.argv[3])
TOLERANCE = 0.15  # >15% ops/sec drop vs baseline fails

with open(baseline_path) as f:
    baseline = {r["name"]: r["ops_per_sec"] for r in json.load(f)["micro"]}

best = {}
for i in range(1, runs + 1):
    with open(f"{tmpdir}/run{i}.json") as f:
        for r in json.load(f)["micro"]:
            best[r["name"]] = max(best.get(r["name"], 0.0), r["ops_per_sec"])

failed = []
for name, ops in sorted(best.items()):
    base = baseline.get(name)
    if base is None or base <= 0:
        print(f"  {name:34s} {ops:14.0f} ops/s  (no baseline — informational)")
        continue
    ratio = ops / base
    mark = "ok" if ratio >= 1.0 - TOLERANCE else "FAIL"
    print(f"  {name:34s} {ops:14.0f} ops/s  {ratio:6.2f}x baseline  {mark}")
    if ratio < 1.0 - TOLERANCE:
        failed.append(name)

if failed:
    print(f"bench_check: {len(failed)} benchmark(s) regressed >15% vs "
          f"{baseline_path}: {', '.join(failed)}")
    sys.exit(1)
print("bench_check: all gated benchmarks within tolerance")
EOF
