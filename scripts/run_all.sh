#!/usr/bin/env bash
# Build, test, and regenerate every paper figure/table.
#   scripts/run_all.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

{
  for b in "$BUILD"/bench/*; do
    if [ -x "$b" ] && [ ! -d "$b" ]; then
      echo "##### $(basename "$b")"
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
