#!/usr/bin/env bash
# Chaos sweep: run the randomized fault-injection suite over many seeds and
# report every failing seed with its determinism trace hash and a one-line
# reproducer command.
#
# Usage:
#   scripts/chaos_sweep.sh [SEEDS] [BUILD_DIR]
#
#   SEEDS      number of seeds per (mode, fault-class) combination
#              (default 50; overrides WIERA_CHAOS_SEED_COUNT)
#   BUILD_DIR  cmake build directory containing tests/chaos_test
#              (default: build)
#
# Combinations run in parallel when CTEST_PARALLEL_LEVEL is set (the same
# knob ctest honors); each combination is its own chaos_test process. The
# brownout overload schedule (docs/OVERLOAD.md) sweeps alongside the
# per-mode fault classes, and the corruption classes (bit-rot, torn writes,
# message corruption — docs/INTEGRITY.md) sweep with scrub + read-repair
# armed.
#
# Every failing run prints a line of the form
#   CHAOS-FAIL seed=<n> mode=<mode> fault=<class> trace=0x<hash>
# which this script collects, echoing next to each one the exact replay:
#   <build>/tests/chaos_test --seed <n> --plan <mode>:<class>
set -u

# shellcheck source=scripts/sweep_lib.sh
. "$(dirname "$0")/sweep_lib.sh"

SEEDS="${1:-${WIERA_CHAOS_SEED_COUNT:-50}}"
BUILD_DIR="${2:-build}"
BINARY="${BUILD_DIR}/tests/chaos_test"
JOBS="${CTEST_PARALLEL_LEVEL:-1}"

sweep_require_binary "${BINARY}" "${BUILD_DIR}" chaos_sweep

# The sweep matrix must match the binary's advertised fault vocabulary
# (--list-plans): a plan class added on either side without the other is a
# stale matrix, caught here before any seed runs.
sweep_validate_tokens "${BINARY}" --list-plans \
  partition crash drop spike bitrot torn msgcorrupt \
  stutter flakylink slownode brownout midflush

# One gtest filter per (mode, fault) combination: the availability faults,
# the corruption faults, the gray (degraded-but-alive) faults with health
# detection armed (docs/HEALTH.md), and the brownout sweep.
FILTERS="$(sweep_filters "${BINARY}" \
  'AllModesAllFaults/*:AllModesAllCorruptionFaults/*:AllModesAllGrayFaults/*:ChaosBrownoutTest.EveryRequest*')"
COMBOS="$(wc -l <<<"${FILTERS}")"

echo "chaos_sweep: ${SEEDS} seeds x ${COMBOS} combinations (${JOBS} parallel)"
LOGDIR="$(mktemp -d)"
trap 'rm -rf "${LOGDIR}"' EXIT

export WIERA_CHAOS_SEED_COUNT="${SEEDS}"
# shellcheck disable=SC2086
sweep_run_filters "${BINARY}" "${LOGDIR}" "${JOBS}" ${FILTERS}

sweep_summarize "${LOGDIR}"

FAILS="$(sweep_fail_count "${LOGDIR}" CHAOS-FAIL)"
GTEST_FAILS="$(sweep_gtest_fail_count "${LOGDIR}")"
if [[ "${FAILS}" -gt 0 || "${GTEST_FAILS}" -gt 0 ]]; then
  echo ""
  echo "chaos_sweep: FAILING SEEDS (replay semantics in docs/FAULTS.md):"
  sweep_fail_lines "${LOGDIR}" CHAOS-FAIL | while read -r LINE; do
    SEED="$(sweep_field "${LINE}" seed)"
    MODE="$(sweep_field "${LINE}" mode)"
    FAULT="$(sweep_field "${LINE}" fault)"
    echo "  ${LINE}"
    echo "    reproduce: ${BINARY} --seed ${SEED} --plan ${MODE}:${FAULT}"
    # Replay the failing seed with telemetry + time-series dumping on: the
    # registry snapshot, the reassembled span tree of an implicated trace,
    # the ATTRIBUTION-REPORT and the TIMESERIES-SNAPSHOT land in the CI log
    # next to the reproducer (docs/OBSERVABILITY.md,
    # docs/METRICS_PIPELINE.md).
    DUMP="${LOGDIR}/dump_${SEED}_${MODE}_${FAULT}.log"
    "${BINARY}" --seed "${SEED}" --plan "${MODE}:${FAULT}" \
      --dump-telemetry --dump-timeseries >"${DUMP}" 2>&1 || true
    sed -n '/^TELEMETRY-SNAPSHOT/,$p' "${DUMP}" | sed 's/^/    /'
  done
  # Overload counters from any failing brownout runs, for CI logs.
  grep -h '^BROWNOUT-STATS' "${LOGDIR}"/*Brownout*.log 2>/dev/null \
    | sed 's/^/  /' || true
  # Detection/repair counters from any failing corruption runs: how much
  # was corrupted, caught, quarantined, and healed (docs/INTEGRITY.md).
  grep -h '^CORRUPTION-STATS' "${LOGDIR}"/*Corruption*.log 2>/dev/null \
    | sed 's/^/  /' || true
  # Probation lifecycle counters from any failing gray runs: how often the
  # health tracker demoted and reinstated the degraded peer (docs/HEALTH.md).
  grep -h '^HEALTH-STATS' "${LOGDIR}"/*Gray*.log 2>/dev/null \
    | sed 's/^/  /' || true
  echo ""
  echo "chaos_sweep: ${FAILS} oracle failure(s), ${GTEST_FAILS} failing combination(s)"
  exit 1
fi

echo "chaos_sweep: all seeds green"
