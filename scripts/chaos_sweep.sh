#!/usr/bin/env bash
# Chaos sweep: run the randomized fault-injection suite over many seeds and
# report every failing seed with its determinism trace hash.
#
# Usage:
#   scripts/chaos_sweep.sh [SEEDS] [BUILD_DIR]
#
#   SEEDS      number of seeds per (mode, fault-class) combination
#              (default 50; overrides WIERA_CHAOS_SEED_COUNT)
#   BUILD_DIR  cmake build directory containing tests/chaos_test
#              (default: build)
#
# Every failing run prints a line of the form
#   CHAOS-FAIL seed=<n> mode=<mode> fault=<class> trace=0x<hash>
# which this script collects and echoes at the end. To replay a failure,
# re-run the suite with the same seed count (plans are derived purely from
# the seed) and filter to the failing combination — see docs/FAULTS.md.
set -u

SEEDS="${1:-${WIERA_CHAOS_SEED_COUNT:-50}}"
BUILD_DIR="${2:-build}"
BINARY="${BUILD_DIR}/tests/chaos_test"

if [[ ! -x "${BINARY}" ]]; then
  echo "chaos_sweep: ${BINARY} not found; build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 2
fi

echo "chaos_sweep: ${SEEDS} seeds per (mode, fault) combination"
LOG="$(mktemp)"
trap 'rm -f "${LOG}"' EXIT

WIERA_CHAOS_SEED_COUNT="${SEEDS}" "${BINARY}" \
  --gtest_filter='AllModesAllFaults/*' --gtest_color=no >"${LOG}" 2>&1
STATUS=$?

grep -E '^\[ *(OK|FAILED) *\]' "${LOG}" | sed 's/^/  /'

FAILS="$(grep -c '^CHAOS-FAIL' "${LOG}" || true)"
if [[ "${STATUS}" -ne 0 || "${FAILS}" -gt 0 ]]; then
  echo ""
  echo "chaos_sweep: FAILING SEEDS (replay instructions in docs/FAULTS.md):"
  grep '^CHAOS-FAIL' "${LOG}" | sed 's/^/  /'
  echo ""
  echo "chaos_sweep: ${FAILS} failing run(s) across the sweep"
  exit 1
fi

echo "chaos_sweep: all seeds green"
