#!/usr/bin/env bash
# Observability-pipeline sweep: the metrics-pipeline acceptance suite
# (docs/METRICS_PIPELINE.md) — the obs unit suites (time series, sampler,
# hot-key sketch, alert rules, tracer edges), the alert-precedes-violation
# scenario mutation pair, and the forced-failure attribution sweep — plus a
# seeded sample ATTRIBUTION-REPORT and TIMESERIES-SNAPSHOT generated for
# artifact upload, so every CI run keeps a concrete example of what a
# failing seed's failure-attribution output looks like.
#
# Usage:
#   scripts/obs_sweep.sh [SEEDS] [BUILD_DIR] [ARTIFACT_DIR]
#
#   SEEDS         seeds for the attribution sweep (default 20; overrides
#                 WIERA_SCENARIO_SEED_COUNT)
#   BUILD_DIR     cmake build directory (default: build)
#   ARTIFACT_DIR  where the sample attribution report and time-series JSON
#                 are written for upload (default: none)
set -euo pipefail

# shellcheck source=scripts/sweep_lib.sh
. "$(dirname "$0")/sweep_lib.sh"

SEEDS="${1:-20}"
BUILD_DIR="${2:-build}"
ARTIFACT_DIR="${3:-}"
OBS_PIPELINE_BINARY="${BUILD_DIR}/tests/obs_pipeline_test"
OBS_BINARY="${BUILD_DIR}/tests/obs_test"
SCENARIO_BINARY="${BUILD_DIR}/tests/scenario_test"
SAMPLE_SEED="${WIERA_OBS_SAMPLE_SEED:-7}"

sweep_require_binary "${OBS_PIPELINE_BINARY}" "${BUILD_DIR}" obs_sweep
sweep_require_binary "${OBS_BINARY}" "${BUILD_DIR}" obs_sweep
sweep_require_binary "${SCENARIO_BINARY}" "${BUILD_DIR}" obs_sweep

echo "obs_sweep: pipeline unit suites (sampler, sketch, alerts, tracer)"
"${OBS_PIPELINE_BINARY}" --gtest_color=no
"${OBS_BINARY}" --gtest_color=no

# The detection-gap acceptance pair: with the pipeline unarmed the guarded
# clause trips AND the oracle appends a detection-gap violation; with it
# armed the burn-rate alert fires strictly before the clause's evidence
# time. Alongside it, the forced-failure attribution sweep: across SEEDS
# seeds the report must name the injected fault event and the hot key from
# the peer-side sketch.
echo ""
echo "obs_sweep: alert-precedes-violation mutation + attribution sweep" \
  "(${SEEDS} seeds)"
WIERA_SCENARIO_SEED_COUNT="${SEEDS}" "${SCENARIO_BINARY}" --gtest_color=no \
  --gtest_filter='ScenarioMutationTest.BurnRateAlertFiresBeforeTheSloClauseTrips:AttributionSweepTest.ReportNamesTheFaultAndTheHotKeyAcrossSeeds'

if [[ -n "${ARTIFACT_DIR}" ]]; then
  mkdir -p "${ARTIFACT_DIR}"

  # A complete sample report from the seeded forced-failure probe, kept as
  # a CI artifact so reviewers can see the current report shape without
  # hunting for a failing seed.
  "${SCENARIO_BINARY}" --attribution-sample --seed "${SAMPLE_SEED}" \
    >"${ARTIFACT_DIR}/ATTRIBUTION-REPORT.sample.txt"
  echo ""
  echo "obs_sweep: sample attribution report (seed ${SAMPLE_SEED}):"
  sed 's/^/  /' "${ARTIFACT_DIR}/ATTRIBUTION-REPORT.sample.txt"

  # A sample time-series snapshot from an armed green replay: the sampler's
  # ring buffers and the per-peer hot-key sketches in JSON, the same blocks
  # a failing-seed replay dumps next to its telemetry snapshot.
  SAMPLE_DUMP="$(mktemp)"
  "${SCENARIO_BINARY}" --seed "${SAMPLE_SEED}" --scenario diurnal \
    --dump-timeseries >"${SAMPLE_DUMP}" 2>&1 || true
  sweep_extract_timeseries "${SAMPLE_DUMP}" \
    "${ARTIFACT_DIR}/TIMESERIES-SNAPSHOT.sample.json"
  rm -f "${SAMPLE_DUMP}"
  if [[ ! -s "${ARTIFACT_DIR}/TIMESERIES-SNAPSHOT.sample.json" ]]; then
    echo "obs_sweep: armed diurnal replay produced no time-series snapshot" >&2
    exit 1
  fi
fi

echo ""
echo "obs_sweep: all green"
