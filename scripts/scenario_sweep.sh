#!/usr/bin/env bash
# Scenario sweep: run the scenario engine's SLO acceptance suite
# (docs/SCENARIOS.md) over many seeds — every built-in scenario, fault-free
# and composed with at least one fault class — plus the bit-identical
# replay checks, and report every failing seed with its determinism trace
# hash and a one-line reproducer command.
#
# Usage:
#   scripts/scenario_sweep.sh [SEEDS] [BUILD_DIR] [ARTIFACT_DIR]
#
#   SEEDS         seeds per (scenario, fault) combination
#                 (default 20; overrides WIERA_SCENARIO_SEED_COUNT)
#   BUILD_DIR     cmake build directory containing tests/scenario_test
#                 (default: build)
#   ARTIFACT_DIR  where failing-seed telemetry dumps are written for upload
#                 (default: none — dumps are inlined into the log only)
#
# Combinations run in parallel when CTEST_PARALLEL_LEVEL is set. Every
# failing run prints a line of the form
#   SCENARIO-FAIL seed=<n> scenario=<name> fault=<class> trace=0x<hash>
# which this script collects, echoing next to each one the exact replay:
#   <build>/tests/scenario_test --seed <n> --scenario <name>:<class>
# and the per-run SCENARIO-STATS counters CI greps for.
set -u

# shellcheck source=scripts/sweep_lib.sh
. "$(dirname "$0")/sweep_lib.sh"

SEEDS="${1:-${WIERA_SCENARIO_SEED_COUNT:-20}}"
BUILD_DIR="${2:-build}"
ARTIFACT_DIR="${3:-}"
BINARY="${BUILD_DIR}/tests/scenario_test"
JOBS="${CTEST_PARALLEL_LEVEL:-1}"

sweep_require_binary "${BINARY}" "${BUILD_DIR}" scenario_sweep

# The sweep matrix must match the binary's advertised scenario vocabulary
# (--list-scenarios): a built-in added on either side without the other is
# a stale matrix, caught here before any seed runs.
sweep_validate_tokens "${BINARY}" --list-scenarios \
  diurnal zipfshift flashcrowd tenantmix evacuation addregion rolling \
  grayprimary graylink

# One gtest filter per scenario sweep plus the determinism replays.
FILTERS="$(sweep_filters "${BINARY}" \
  'ScenarioSweepTest.*:ScenarioDeterminismTest.*:ScenarioMutationTest.*')"
COMBOS="$(wc -l <<<"${FILTERS}")"

echo "scenario_sweep: ${SEEDS} seeds x ${COMBOS} combinations (${JOBS} parallel)"
LOGDIR="$(mktemp -d)"
trap 'rm -rf "${LOGDIR}"' EXIT

export WIERA_SCENARIO_SEED_COUNT="${SEEDS}"
# shellcheck disable=SC2086
sweep_run_filters "${BINARY}" "${LOGDIR}" "${JOBS}" ${FILTERS}

sweep_summarize "${LOGDIR}"

FAILS="$(sweep_fail_count "${LOGDIR}" SCENARIO-FAIL)"
GTEST_FAILS="$(sweep_gtest_fail_count "${LOGDIR}")"
if [[ "${FAILS}" -gt 0 || "${GTEST_FAILS}" -gt 0 ]]; then
  echo ""
  echo "scenario_sweep: FAILING SEEDS (replay semantics in docs/SCENARIOS.md):"
  sweep_fail_lines "${LOGDIR}" SCENARIO-FAIL | while read -r LINE; do
    SEED="$(sweep_field "${LINE}" seed)"
    SCENARIO="$(sweep_field "${LINE}" scenario)"
    FAULT="$(sweep_field "${LINE}" fault)"
    echo "  ${LINE}"
    echo "    reproduce: ${BINARY} --seed ${SEED} --scenario ${SCENARIO}:${FAULT}"
    # Replay the failing seed with telemetry + time-series dumping on: the
    # scenario timeline, registry snapshot, implicated span trees,
    # ATTRIBUTION-REPORT and TIMESERIES-SNAPSHOT land in the log — and in
    # ARTIFACT_DIR when set, with the time-series JSON and attribution
    # block split into sidecar files for upload.
    DUMP="${LOGDIR}/dump_${SEED}_${SCENARIO}_${FAULT}.log"
    "${BINARY}" --seed "${SEED}" --scenario "${SCENARIO}:${FAULT}" \
      --dump-telemetry --dump-timeseries >"${DUMP}" 2>&1 || true
    sed -n '/^SCENARIO-TIMELINE/,$p' "${DUMP}" | sed 's/^/    /'
    if [[ -n "${ARTIFACT_DIR}" ]]; then
      mkdir -p "${ARTIFACT_DIR}"
      cp "${DUMP}" "${ARTIFACT_DIR}/"
      sweep_extract_timeseries "${DUMP}" \
        "${ARTIFACT_DIR}/dump_${SEED}_${SCENARIO}_${FAULT}.timeseries.json"
      sweep_extract_attribution "${DUMP}" \
        "${ARTIFACT_DIR}/dump_${SEED}_${SCENARIO}_${FAULT}.attribution.txt"
    fi
  done
  # Per-run counters from every failing combination, for CI logs — the
  # scenario op counters and, for gray runs, the probation lifecycle
  # counters (docs/HEALTH.md).
  grep -lh '\[  FAILED  \]' "${LOGDIR}"/*.log 2>/dev/null \
    | xargs -r grep -hE '^(SCENARIO|HEALTH)-STATS' | sed 's/^/  /' || true
  echo ""
  echo "scenario_sweep: ${FAILS} SLO/oracle failure(s), ${GTEST_FAILS} failing combination(s)"
  exit 1
fi

echo "scenario_sweep: all seeds green"
