# Shared machinery for the seed-sweep drivers (chaos_sweep.sh,
# scenario_sweep.sh): gtest filter enumeration, bounded-parallel execution
# of one test binary per combination, result summaries, and field
# extraction from the FAIL/STATS marker lines the suites print.
#
# Source this file; it defines functions only (no side effects). Callers
# own their CLI surface and the suite-specific reproducer command shape.

# sweep_require_binary BINARY BUILD_DIR NAME
# Exit 2 with a build hint unless BINARY is executable.
sweep_require_binary() {
  local binary="$1" build_dir="$2" name="$3"
  if [[ ! -x "${binary}" ]]; then
    echo "${name}: ${binary} not found; build first:" >&2
    echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
    exit 2
  fi
}

# sweep_validate_tokens BINARY FLAG TOKEN...
# Cross-check the sweep matrix against the binary's own advertised
# vocabulary: BINARY FLAG (--list-plans / --list-scenarios) must print every
# TOKEN, and every printed token must be among TOKEN... — so a fault class
# or scenario added on one side without the other fails the sweep up front
# instead of silently not sweeping.
sweep_validate_tokens() {
  local binary="$1" flag="$2"
  shift 2
  local advertised token ok
  advertised="$("${binary}" "${flag}")" || {
    echo "sweep_validate_tokens: ${binary} ${flag} failed" >&2
    exit 2
  }
  for token in "$@"; do
    if ! grep -qx "${token}" <<<"${advertised}"; then
      echo "sweep_validate_tokens: ${binary} ${flag} does not advertise" \
        "'${token}' — sweep matrix is stale" >&2
      exit 2
    fi
  done
  while read -r token; do
    [[ -z "${token}" ]] && continue
    ok=0
    for want in "$@"; do
      [[ "${token}" == "${want}" ]] && ok=1
    done
    if (( !ok )); then
      echo "sweep_validate_tokens: ${binary} ${flag} advertises '${token}'" \
        "but the sweep matrix does not cover it" >&2
      exit 2
    fi
  done <<<"${advertised}"
}

# sweep_filters BINARY GTEST_FILTER
# Print one fully-qualified test name per line for every test matching
# GTEST_FILTER — each becomes its own process in the sweep.
sweep_filters() {
  "$1" --gtest_list_tests --gtest_filter="$2" \
    | awk '/^[^ ]/ {suite=$1} /^  / {print suite $1}'
}

# sweep_run_filters BINARY LOGDIR JOBS FILTER...
# Run BINARY once per filter with at most JOBS processes in flight; each
# run's output lands in LOGDIR/<filter>.log.
sweep_run_filters() {
  local binary="$1" logdir="$2" jobs="$3"
  shift 3
  local running=0 filter log
  for filter in "$@"; do
    log="${logdir}/$(echo "${filter}" | tr '/.' '__').log"
    "${binary}" --gtest_filter="${filter}" --gtest_color=no \
      >"${log}" 2>&1 &
    running=$((running + 1))
    if (( running >= jobs )); then
      wait -n || true
      running=$((running - 1))
    fi
  done
  wait || true
}

# sweep_summarize LOGDIR
# Echo every per-test OK/FAILED line from the sweep logs, indented.
sweep_summarize() {
  grep -hE '^\[ *(OK|FAILED) *\]' "$1"/*.log | sed 's/^/  /'
}

# sweep_field LINE KEY
# Extract the value of "KEY=value" from a marker line ("" if absent).
sweep_field() {
  sed -n "s/.*$2=\([^ ]*\).*/\1/p" <<<"$1"
}

# sweep_fail_lines LOGDIR TAG
# Every suite marker line (e.g. CHAOS-FAIL, SCENARIO-FAIL) in the logs.
sweep_fail_lines() {
  grep -h "^$2" "$1"/*.log 2>/dev/null || true
}

# sweep_extract_timeseries DUMPLOG OUTJSON
# Pull the one-line TIMESERIES-SNAPSHOT JSON (printed by --dump-timeseries
# replays, docs/METRICS_PIPELINE.md) out of a failing-seed dump log into its
# own artifact file next to the telemetry snapshot; the KEYSTATS lines ride
# along as a JSON-lines tail. Removes OUTJSON when the log has no snapshot.
sweep_extract_timeseries() {
  local dump="$1" out="$2"
  awk '/^TIMESERIES-SNAPSHOT$/ {grab=1; next}
       grab {print; grab=0}
       /^KEYSTATS instance=/ {print}' "${dump}" >"${out}"
  [[ -s "${out}" ]] || rm -f "${out}"
}

# sweep_extract_attribution DUMPLOG OUT
# Copy the ATTRIBUTION-REPORT ... END-ATTRIBUTION-REPORT block a failing
# replay printed into its own artifact file ("" when the replay was clean).
sweep_extract_attribution() {
  local dump="$1" out="$2"
  sed -n '/^ATTRIBUTION-REPORT/,/^END-ATTRIBUTION-REPORT/p' "${dump}" >"${out}"
  [[ -s "${out}" ]] || rm -f "${out}"
}

# sweep_fail_count LOGDIR TAG / sweep_gtest_fail_count LOGDIR
sweep_fail_count() {
  sweep_fail_lines "$1" "$2" | grep -c . || true
}

sweep_gtest_fail_count() {
  grep -l '\[  FAILED  \]' "$1"/*.log 2>/dev/null | wc -l
}
