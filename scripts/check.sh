#!/usr/bin/env bash
# Static + dynamic analysis gate:
#   1. wiera-lint over src/, bench/, tests/ against the committed baseline
#      (docs/STATIC_ANALYSIS.md) — always runs, the tool builds from source
#   2. clang-tidy over src/ (skipped with a notice when clang-tidy is not
#      installed — the container image may only carry gcc; any finding is an
#      error via WarningsAsErrors and fails this script)
#   3. an ASan+UBSan build running the full ctest suite
#   4. the regular RelWithDebInfo build + ctest (includes the SimChecker
#      suite and the determinism-hash tests)
#
#   scripts/check.sh [--lint-only|--tidy-only|--san-only|--test-only]
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 2)"
GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

run_lint() {
  echo "==== wiera-lint ===="
  cmake -B build "${GEN[@]}" >/dev/null
  cmake --build build -j "$JOBS" --target wiera-lint
  ./build/tools/lint/wiera-lint --root . \
    --baseline tools/lint/baseline.txt --fix-hints src bench tests
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "check.sh: clang-tidy not found; skipping the tidy pass" >&2
    return 0
  fi
  echo "==== clang-tidy ===="
  # compile_commands.json is exported by default (CMAKE_EXPORT_COMPILE_COMMANDS).
  # WarningsAsErrors: '*' in .clang-tidy makes any finding exit nonzero,
  # which set -e turns into a failure of this script.
  cmake -B build "${GEN[@]}" >/dev/null
  local files
  files=$(find src -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet ${files}
  else
    # shellcheck disable=SC2086
    clang-tidy -p build --quiet ${files}
  fi
}

run_sanitized() {
  echo "==== ASan + UBSan build ===="
  cmake -B build-asan "${GEN[@]}" \
    -DWIERA_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-asan -j "$JOBS"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tests() {
  echo "==== regular build + ctest ===="
  cmake -B build "${GEN[@]}" >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

case "$MODE" in
  --lint-only) run_lint ;;
  --tidy-only) run_tidy ;;
  --san-only)  run_sanitized ;;
  --test-only) run_tests ;;
  all)         run_lint; run_tidy; run_sanitized; run_tests ;;
  *) echo "usage: $0 [--lint-only|--tidy-only|--san-only|--test-only]" >&2; exit 2 ;;
esac
echo "check.sh: all requested passes completed"
