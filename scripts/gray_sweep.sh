#!/usr/bin/env bash
# Gray-failure sweep: the health-detection acceptance matrix
# (docs/HEALTH.md) over many seeds, across both suites that exercise it.
#
#   * chaos_test  — AllModesAllGrayFaults/* (a single degraded-but-alive
#     peer or link never trips failover with health detection armed), the
#     flap-damping regression, and the health-armed determinism replay;
#   * scenario_test — the gray scenario sweeps (grayprimary under diurnal
#     load, graylink during a flash crowd) holding the SLO p99-inflation
#     clause, plus the DisabledHealthDetection mutation test showing the
#     clause fires when the tracker is off.
#
# Usage:
#   scripts/gray_sweep.sh [SEEDS] [BUILD_DIR] [ARTIFACT_DIR]
#
#   SEEDS         seeds per combination (default 20; overrides both
#                 WIERA_CHAOS_SEED_COUNT and WIERA_SCENARIO_SEED_COUNT)
#   BUILD_DIR     cmake build directory (default: build)
#   ARTIFACT_DIR  where failing-seed telemetry dumps and the HEALTH-STATS
#                 telemetry are written for upload (default: none)
#
# Every run prints HEALTH-STATS lines (probation entry/exit counters keyed
# by seed and trace hash); this script surfaces them all — green or red —
# so CI keeps a record of detection behavior over time. Failing seeds are
# replayed with --dump-telemetry --dump-timeseries exactly like the parent
# sweeps (time-series JSON and attribution reports land in ARTIFACT_DIR as
# sidecar files, docs/METRICS_PIPELINE.md):
#   <build>/tests/chaos_test    --seed <n> --plan <mode>:<fault>
#   <build>/tests/scenario_test --seed <n> --scenario <name>:<fault>
set -u

# shellcheck source=scripts/sweep_lib.sh
. "$(dirname "$0")/sweep_lib.sh"

SEEDS="${1:-20}"
BUILD_DIR="${2:-build}"
ARTIFACT_DIR="${3:-}"
CHAOS_BINARY="${BUILD_DIR}/tests/chaos_test"
SCENARIO_BINARY="${BUILD_DIR}/tests/scenario_test"
JOBS="${CTEST_PARALLEL_LEVEL:-1}"

sweep_require_binary "${CHAOS_BINARY}" "${BUILD_DIR}" gray_sweep
sweep_require_binary "${SCENARIO_BINARY}" "${BUILD_DIR}" gray_sweep

# The gray fault classes and scenarios this sweep covers must be advertised
# by the binaries (--list-plans / --list-scenarios), so a rename on either
# side fails loudly up front.
sweep_validate_tokens "${CHAOS_BINARY}" --list-plans \
  partition crash drop spike bitrot torn msgcorrupt \
  stutter flakylink slownode brownout midflush
sweep_validate_tokens "${SCENARIO_BINARY}" --list-scenarios \
  diurnal zipfshift flashcrowd tenantmix evacuation addregion rolling \
  grayprimary graylink

CHAOS_FILTERS="$(sweep_filters "${CHAOS_BINARY}" \
  'AllModesAllGrayFaults/*:ChaosRegressionTest.FlapDampingAbsorbsOneDroppedPingRound:ChaosDeterminismTest.SameSeedSameTraceHashWithHealthDetectionArmed')"
SCENARIO_FILTERS="$(sweep_filters "${SCENARIO_BINARY}" \
  'ScenarioSweepTest.GrayPrimaryUnderDiurnalHoldsTheInflationBound:ScenarioSweepTest.FlakyLinkDuringFlashCrowdStaysConvergent:ScenarioMutationTest.DisabledHealthDetectionTripsTheInflationClause')"
COMBOS="$(($(wc -l <<<"${CHAOS_FILTERS}") + $(wc -l <<<"${SCENARIO_FILTERS}")))"

echo "gray_sweep: ${SEEDS} seeds x ${COMBOS} combinations (${JOBS} parallel)"
LOGDIR="$(mktemp -d)"
trap 'rm -rf "${LOGDIR}"' EXIT

export WIERA_CHAOS_SEED_COUNT="${SEEDS}"
export WIERA_SCENARIO_SEED_COUNT="${SEEDS}"
# shellcheck disable=SC2086
sweep_run_filters "${CHAOS_BINARY}" "${LOGDIR}" "${JOBS}" ${CHAOS_FILTERS}
# shellcheck disable=SC2086
sweep_run_filters "${SCENARIO_BINARY}" "${LOGDIR}" "${JOBS}" ${SCENARIO_FILTERS}

sweep_summarize "${LOGDIR}"

# The probation lifecycle telemetry, surfaced on green runs too: CI keeps
# these lines (and the artifact copy) as a record of detection behavior.
echo ""
echo "gray_sweep: HEALTH-STATS telemetry:"
grep -h '^HEALTH-STATS' "${LOGDIR}"/*.log 2>/dev/null | sed 's/^/  /' || true
if [[ -n "${ARTIFACT_DIR}" ]]; then
  mkdir -p "${ARTIFACT_DIR}"
  grep -h '^HEALTH-STATS' "${LOGDIR}"/*.log 2>/dev/null \
    >"${ARTIFACT_DIR}/health_stats.txt" || true
fi

CHAOS_FAILS="$(sweep_fail_count "${LOGDIR}" CHAOS-FAIL)"
SCENARIO_FAILS="$(sweep_fail_count "${LOGDIR}" SCENARIO-FAIL)"
GTEST_FAILS="$(sweep_gtest_fail_count "${LOGDIR}")"
if [[ "${CHAOS_FAILS}" -gt 0 || "${SCENARIO_FAILS}" -gt 0 ||
      "${GTEST_FAILS}" -gt 0 ]]; then
  echo ""
  echo "gray_sweep: FAILING SEEDS (replay semantics in docs/HEALTH.md):"
  sweep_fail_lines "${LOGDIR}" CHAOS-FAIL | while read -r LINE; do
    SEED="$(sweep_field "${LINE}" seed)"
    MODE="$(sweep_field "${LINE}" mode)"
    FAULT="$(sweep_field "${LINE}" fault)"
    echo "  ${LINE}"
    echo "    reproduce: ${CHAOS_BINARY} --seed ${SEED} --plan ${MODE}:${FAULT}"
    DUMP="${LOGDIR}/dump_chaos_${SEED}_${MODE}_${FAULT}.log"
    "${CHAOS_BINARY}" --seed "${SEED}" --plan "${MODE}:${FAULT}" \
      --dump-telemetry --dump-timeseries >"${DUMP}" 2>&1 || true
    sed -n '/^TELEMETRY-SNAPSHOT/,$p' "${DUMP}" | sed 's/^/    /'
    if [[ -n "${ARTIFACT_DIR}" ]]; then
      mkdir -p "${ARTIFACT_DIR}"
      cp "${DUMP}" "${ARTIFACT_DIR}/"
      sweep_extract_timeseries "${DUMP}" \
        "${ARTIFACT_DIR}/dump_chaos_${SEED}_${MODE}_${FAULT}.timeseries.json"
      sweep_extract_attribution "${DUMP}" \
        "${ARTIFACT_DIR}/dump_chaos_${SEED}_${MODE}_${FAULT}.attribution.txt"
    fi
  done
  sweep_fail_lines "${LOGDIR}" SCENARIO-FAIL | while read -r LINE; do
    SEED="$(sweep_field "${LINE}" seed)"
    SCENARIO="$(sweep_field "${LINE}" scenario)"
    FAULT="$(sweep_field "${LINE}" fault)"
    echo "  ${LINE}"
    echo "    reproduce: ${SCENARIO_BINARY} --seed ${SEED} --scenario ${SCENARIO}:${FAULT}"
    DUMP="${LOGDIR}/dump_scenario_${SEED}_${SCENARIO}_${FAULT}.log"
    "${SCENARIO_BINARY}" --seed "${SEED}" --scenario "${SCENARIO}:${FAULT}" \
      --dump-telemetry --dump-timeseries >"${DUMP}" 2>&1 || true
    sed -n '/^SCENARIO-TIMELINE/,$p' "${DUMP}" | sed 's/^/    /'
    if [[ -n "${ARTIFACT_DIR}" ]]; then
      mkdir -p "${ARTIFACT_DIR}"
      cp "${DUMP}" "${ARTIFACT_DIR}/"
      sweep_extract_timeseries "${DUMP}" \
        "${ARTIFACT_DIR}/dump_scenario_${SEED}_${SCENARIO}_${FAULT}.timeseries.json"
      sweep_extract_attribution "${DUMP}" \
        "${ARTIFACT_DIR}/dump_scenario_${SEED}_${SCENARIO}_${FAULT}.attribution.txt"
    fi
  done
  echo ""
  echo "gray_sweep: ${CHAOS_FAILS}+${SCENARIO_FAILS} oracle failure(s), ${GTEST_FAILS} failing combination(s)"
  exit 1
fi

echo "gray_sweep: all seeds green"
